//! Per-shard job state, the event application logic, and the live
//! counters a concurrent service publishes.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use nurd_codec::{Checkpointable, Decoder, Encoder};
use nurd_data::{
    ActionRecord, BarrierView, Checkpoint, FinishedTask, JobSpec, MitigationAction,
    MitigationPolicy, OnlinePredictor, RunningTask, StreamContext, TaskEvent,
};
use nurd_sim::outcome_from_flags;

use crate::engine::{JobReport, MitigatorFactory, PredictorFactory};
use crate::lifecycle::{FinalizeReason, JobPhase, OverloadCounters};
use crate::observer::HealthObserver;
use crate::persist::{job_signature, DonorSeed, RecoverError};
use crate::snapshot::SnapshotData;
use crate::wal::WalWriter;

/// One shard's live counters, published as atomics so
/// [`EngineStats`](crate::EngineStats) can be snapshotted from any thread
/// *while drains are running* — no lock is taken, no drain is paused.
/// Push-side counters (blocked/shed/rejected ingress) are bumped by
/// producer threads; drain-side counters by whichever worker holds the
/// shard. All loads/stores are `Relaxed`: each counter is an independent
/// monotone tally, and a snapshot only promises per-counter atomicity,
/// not a cross-counter consistent cut.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Events applied by drains (lifecycle events included).
    pub(crate) events_processed: AtomicUsize,
    /// Events whose job was never admitted.
    pub(crate) orphan_events: AtomicUsize,
    /// Structurally invalid events rejected during application.
    pub(crate) rejected_events: AtomicUsize,
    /// Events that arrived after their job finalized.
    pub(crate) stale_events: AtomicUsize,
    /// Pushes that found this shard's ingress full under
    /// [`OverloadPolicy::Block`](crate::OverloadPolicy::Block).
    pub(crate) blocked_pushes: AtomicUsize,
    /// Queued events evicted under
    /// [`OverloadPolicy::ShedOldest`](crate::OverloadPolicy::ShedOldest).
    pub(crate) shed_events: AtomicUsize,
    /// Incoming events dropped under
    /// [`OverloadPolicy::RejectNew`](crate::OverloadPolicy::RejectNew).
    pub(crate) rejected_ingress: AtomicUsize,
    /// Live (admitted, not yet finalized) jobs resident in this shard.
    pub(crate) live_jobs: AtomicUsize,
    /// Jobs this shard has finalized over its lifetime.
    pub(crate) finalized_jobs: AtomicUsize,
    /// Times adaptive balancing switched within-job parallelism **on**
    /// for this shard (see [`BalanceConfig`](crate::BalanceConfig)).
    pub(crate) balance_boosts: AtomicUsize,
    /// Jobs quarantined because their predictor panicked during apply
    /// (see [`FinalizeReason::Poisoned`]).
    pub(crate) poisoned_jobs: AtomicUsize,
    /// `Clone` mitigation actions committed to job action logs.
    pub(crate) clones_issued: AtomicUsize,
    /// `Quarantine` mitigation actions committed to job action logs.
    pub(crate) quarantines_issued: AtomicUsize,
    /// Policy decisions the engine refused: target not running, already
    /// actioned, or the per-job clone budget was exhausted.
    pub(crate) mitigation_suppressed: AtomicUsize,
}

impl ShardStats {
    pub(crate) fn add(&self, counter: &AtomicUsize, n: usize) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn overload(&self) -> OverloadCounters {
        OverloadCounters {
            shed_events: self.shed_events.load(Ordering::Relaxed),
            rejected_ingress: self.rejected_ingress.load(Ordering::Relaxed),
        }
    }
}

/// What the shard knows about one task of one job.
#[derive(Debug, Default)]
struct TaskState {
    /// Latest feature snapshot (frozen once finished).
    features: Vec<f64>,
    /// `Some` once the task's `Finished` event arrived.
    latency: Option<f64>,
    /// Checkpoint ordinal at which the task was flagged a straggler.
    flagged_at: Option<usize>,
    /// Whether any snapshot has arrived (guards scoring a task the
    /// stream never described).
    seen: bool,
}

/// One job's online state inside a shard: the predictor plus exactly the
/// bookkeeping the replay protocol keeps — flagged tasks leave both the
/// finished and running views forever (their completions still count for
/// ground truth and warmup, never for training). The whole struct is
/// dropped when the job finalizes; only its [`JobReport`] outlives it.
pub(crate) struct JobState {
    spec: JobSpec,
    predictor: Box<dyn OnlinePredictor + Send>,
    tasks: Vec<TaskState>,
    /// Tasks whose `Finished` event has arrived (including flagged ones —
    /// the warmup quorum counts every completion, as the replay does).
    finished_total: usize,
    /// First checkpoint at which the warmup quorum held.
    warmup_at: Option<usize>,
    /// Barriers processed so far (the next expected ordinal).
    barriers_seen: usize,
    /// Checkpoints at which the predictor was actually invoked.
    pub(crate) checkpoints_scored: usize,
    /// `Some` iff this job persists in *history mode*: its predictor
    /// cannot serialize itself (`snapshot_state()` probed `None` at
    /// admission), so the shard retains every accepted event and a
    /// snapshot re-derives the predictor by replaying them through a
    /// fresh factory instance. `None` on non-persistent engines and for
    /// blob-capable predictors — the zero-overhead common case.
    history: Option<Vec<TaskEvent>>,
    /// Mitigation policy deciding actions at this job's scored barriers
    /// (`None` when no mitigator is attached — the scorer-only mode).
    policy: Option<Box<dyn MitigationPolicy + Send>>,
    /// Actions committed for this job so far, decision order. Rides the
    /// job's snapshot record and, at finalization, its [`JobReport`].
    actions: Vec<ActionRecord>,
    /// Per-task "already actioned" marks (one action per task, ever).
    actioned: Vec<bool>,
    /// `Clone` actions committed, checked against the policy's budget.
    clones_used: usize,
    /// Task → node placement, set by the job's
    /// [`TaskEvent::Placed`] event (`None` until one arrives; traces
    /// without a node model never send one). Part of the job's own event
    /// stream, so exposing it to policies and observers preserves the
    /// bit-identical-across-shard-counts guarantee.
    nodes: Option<Vec<u32>>,
    /// Pooled capacity for the per-barrier checkpoint assembly, so a
    /// steady-state barrier commit allocates nothing (see
    /// [`BarrierScratch`]). Never serialized: it holds no state, only
    /// reusable allocations.
    scratch: BarrierScratch,
}

/// Reusable allocation capacity for [`JobState::barrier`].
///
/// The checkpoint views borrow feature slices from the job's task table,
/// so their element types carry a lifetime and cannot be stored in
/// `JobState` directly. Instead the *emptied* vectors are parked here
/// under a placeholder `'static` lifetime between barriers — an empty
/// `Vec` owns raw capacity and no elements, so no borrow ever outlives
/// the barrier that created it — and [`recycle_capacity`] moves that
/// capacity back under the short borrow at the next barrier.
#[derive(Default)]
struct BarrierScratch {
    /// Finished-task view carcass (capacity only between barriers).
    finished: Vec<FinishedTask<'static>>,
    /// Running-task view carcass (capacity only between barriers).
    running: Vec<RunningTask<'static>>,
    /// Sorted running-task ids, rebuilt in place each barrier.
    running_ids: Vec<usize>,
    /// Tasks first flagged at this barrier (the finished-set delta fed to
    /// observers and mitigation policies), rebuilt in place each barrier.
    newly_flagged: Vec<usize>,
}

/// Moves the raw capacity of an *emptied* `Vec` across a change of its
/// element type's lifetime parameters only (e.g. `FinishedTask<'static>`
/// → `FinishedTask<'a>` and back).
fn recycle_capacity<A, B>(mut v: Vec<A>) -> Vec<B> {
    assert!(
        std::mem::size_of::<A>() == std::mem::size_of::<B>()
            && std::mem::align_of::<A>() == std::mem::align_of::<B>(),
        "recycle_capacity requires identical element layout"
    );
    v.clear();
    let capacity = v.capacity();
    let ptr = v.as_mut_ptr().cast::<B>();
    std::mem::forget(v);
    // SAFETY: the vector was emptied above, so no value of type `A` is
    // ever read back as a `B`; the allocation was made by `Vec<A>` and —
    // with element size and alignment equality asserted above — has
    // exactly the layout `Vec<B>` would request for `capacity` elements.
    unsafe { Vec::from_raw_parts(ptr, 0, capacity) }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("jobs", &self.jobs.len())
            .field("finalized", &self.finalized_ids.len())
            .field("granted_threads", &self.granted_threads)
            .finish()
    }
}

impl JobState {
    /// Admits a job. `persistent` engines probe the predictor's
    /// serialization support here, once, at admission: a predictor whose
    /// `snapshot_state()` is `None` switches this job to history-mode
    /// persistence (see [`JobState::history`]).
    fn new(
        spec: JobSpec,
        mut predictor: Box<dyn OnlinePredictor + Send>,
        persistent: bool,
        policy: Option<Box<dyn MitigationPolicy + Send>>,
    ) -> Self {
        predictor.begin_stream(&StreamContext {
            threshold: spec.threshold,
            task_count: spec.task_count,
            feature_dim: spec.feature_dim,
        });
        let history = (persistent && predictor.snapshot_state().is_none()).then(Vec::new);
        let tasks = (0..spec.task_count).map(|_| TaskState::default()).collect();
        let actioned = vec![false; spec.task_count];
        JobState {
            spec,
            predictor,
            tasks,
            finished_total: 0,
            warmup_at: None,
            barriers_seen: 0,
            checkpoints_scored: 0,
            history,
            policy,
            actions: Vec::new(),
            actioned,
            clones_used: 0,
            nodes: None,
            scratch: BarrierScratch::default(),
        }
    }

    /// The job's fleet-unique id.
    pub(crate) fn job(&self) -> u64 {
        self.spec.job
    }

    /// The warmup quorum — the one shared definition
    /// ([`nurd_data::warmup_quorum`]) the replay simulator also uses, so
    /// engine and replay warmup timing can never drift apart.
    fn warmup_need(&self, fraction: f64) -> usize {
        nurd_data::warmup_quorum(self.spec.task_count, fraction)
    }

    /// The job's current lifecycle phase (the shard answers `Finalized`
    /// itself — a finalized job has no `JobState` left).
    fn phase(&self) -> JobPhase {
        if self.warmup_at.is_some() {
            JobPhase::Scoring
        } else if self.barriers_seen > 0 || self.finished_total > 0 {
            JobPhase::Warming
        } else {
            JobPhase::Admitted
        }
    }

    /// Whether the job's stream has nothing left that could change its
    /// outcome. Checked only right after a barrier closes, which is what
    /// keeps it equivalent to sequential replay: at a barrier where every
    /// task has finished, the clock is at or past the slowest latency and
    /// therefore at or past `τ_stra`, so replay's revelation rule has
    /// already shut the prediction window — the remaining barriers (if
    /// any) are no-ops on both paths.
    fn stream_complete(&self) -> bool {
        self.barriers_seen == self.spec.checkpoints || self.finished_total == self.spec.task_count
    }

    /// Applies one event; returns `false` for a structurally invalid
    /// event (unknown task id, wrong feature width, duplicate completion,
    /// out-of-order barrier), which is **rejected** — counted by the
    /// shard, applied to nothing. Rejection is what keeps one malformed
    /// event of one job from panicking a drain that holds every job's
    /// state: a ragged snapshot would otherwise surface as a ragged
    /// checkpoint matrix deep inside the predictor.
    fn apply(
        &mut self,
        event: TaskEvent,
        warmup_fraction: f64,
        backlog: usize,
        observer: Option<&dyn HealthObserver>,
        stats: &ShardStats,
    ) -> bool {
        match event {
            TaskEvent::JobStart { .. } | TaskEvent::JobEnd { .. } => {
                unreachable!("lifecycle events are handled by the shard drain")
            }
            TaskEvent::Submitted { task, .. } => {
                let Some(state) = self.tasks.get_mut(task) else {
                    return false;
                };
                state.seen = true;
            }
            TaskEvent::Placed { nodes, .. } => {
                // A placement must cover every task exactly once; a second
                // Placed (at-least-once delivery) is a duplicate, rejected
                // like a replayed barrier.
                if nodes.len() != self.spec.task_count || self.nodes.is_some() {
                    return false;
                }
                self.nodes = Some(nodes);
            }
            TaskEvent::Progress { task, features, .. } => {
                if features.len() != self.spec.feature_dim {
                    return false;
                }
                let Some(state) = self.tasks.get_mut(task) else {
                    return false;
                };
                // Progress for a flagged or finished task is stale
                // stream noise; the protocol ignores it.
                if state.flagged_at.is_none() && state.latency.is_none() {
                    state.features = features;
                    state.seen = true;
                }
            }
            TaskEvent::Finished {
                task,
                features,
                latency,
                ..
            } => {
                if features.len() != self.spec.feature_dim {
                    return false;
                }
                let Some(state) = self.tasks.get_mut(task) else {
                    return false;
                };
                if state.latency.is_some() {
                    return false; // duplicate completion
                }
                state.latency = Some(latency);
                self.finished_total += 1;
                // A flagged task's completion feeds ground truth and the
                // warmup quorum, but its features never (re-)enter the
                // training view.
                if state.flagged_at.is_none() {
                    state.features = features;
                    state.seen = true;
                }
            }
            TaskEvent::Barrier { ordinal, time, .. } => {
                return self.barrier(ordinal, time, warmup_fraction, backlog, observer, stats);
            }
        }
        true
    }

    /// Closes checkpoint `ordinal`: updates the warmup state and, inside
    /// the prediction window, assembles the checkpoint view and scores
    /// it. Rejects (returns `false`) any barrier that is not the next
    /// expected ordinal — re-scoring an already-closed checkpoint (e.g.
    /// a duplicate from at-least-once delivery) would silently diverge
    /// from sequential replay.
    fn barrier(
        &mut self,
        ordinal: usize,
        time: f64,
        warmup_fraction: f64,
        backlog: usize,
        observer: Option<&dyn HealthObserver>,
        stats: &ShardStats,
    ) -> bool {
        if ordinal != self.barriers_seen {
            return false;
        }
        self.barriers_seen = ordinal + 1;
        if self.warmup_at.is_none() {
            let quorum = self.finished_total >= self.warmup_need(warmup_fraction);
            // Mirror `JobTrace::warmup_checkpoint`: if the quorum never
            // holds, the last checkpoint is the warmup point.
            if quorum || ordinal + 1 == self.spec.checkpoints {
                self.warmup_at = Some(ordinal);
            }
        }
        // Revelation rule: past `τ_stra`, survivors have revealed
        // themselves and prediction stops (see `nurd_sim::replay_job`).
        let predicting = self.warmup_at.is_some_and(|w| ordinal >= w) && time < self.spec.threshold;
        if !predicting {
            return true;
        }

        // Assemble the checkpoint exactly as the simulator does: task-id
        // order, flagged tasks in neither list, finished features frozen.
        // The list vectors are drawn from the job's pooled scratch, so a
        // steady-state barrier allocates nothing here.
        let JobState {
            tasks,
            predictor,
            scratch,
            ..
        } = self;
        let mut finished: Vec<FinishedTask<'_>> =
            recycle_capacity(std::mem::take(&mut scratch.finished));
        let mut running: Vec<RunningTask<'_>> =
            recycle_capacity(std::mem::take(&mut scratch.running));
        for (id, state) in tasks.iter().enumerate() {
            if state.flagged_at.is_some() || !state.seen {
                continue;
            }
            match state.latency {
                Some(latency) => finished.push(FinishedTask {
                    id,
                    features: &state.features,
                    latency,
                }),
                None => running.push(RunningTask {
                    id,
                    features: &state.features,
                }),
            }
        }
        let mut running_ids = std::mem::take(&mut scratch.running_ids);
        running_ids.clear();
        running_ids.extend(running.iter().map(|r| r.id));
        let checkpoint = Checkpoint {
            ordinal,
            time,
            finished,
            running,
        };
        self.checkpoints_scored += 1;
        if self.policy.is_none() && observer.is_none() {
            let flagged = predictor.predict(&checkpoint);
            // Park the emptied view vectors back in the pool *before*
            // mutating the task table: once cleared and re-lifetimed they
            // no longer borrow from it.
            let Checkpoint {
                finished, running, ..
            } = checkpoint;
            scratch.finished = recycle_capacity(finished);
            scratch.running = recycle_capacity(running);
            for id in flagged {
                // Same guard as the simulator: only actually-running tasks
                // can be flagged.
                if running_ids.contains(&id) {
                    tasks[id].flagged_at = Some(ordinal);
                }
            }
            scratch.running_ids = running_ids;
            return true;
        }

        // Mitigation/observation path: one `predict_scored` call per
        // barrier — by the predictor contract its flag set and state
        // transition are bit-identical to `predict`, so attaching a
        // mitigator or observer never changes what gets flagged, only
        // what gets *done* (or learned) about it.
        let scored = predictor.predict_scored(&checkpoint);
        let Checkpoint {
            finished, running, ..
        } = checkpoint;
        scratch.finished = recycle_capacity(finished);
        scratch.running = recycle_capacity(running);
        let mut newly_flagged = std::mem::take(&mut scratch.newly_flagged);
        newly_flagged.clear();
        for id in scored.flagged {
            if running_ids.contains(&id) {
                tasks[id].flagged_at = Some(ordinal);
                newly_flagged.push(id);
            }
        }
        if let Some(observer) = observer {
            observer.observe_barrier(
                self.spec.job,
                ordinal,
                time,
                self.nodes.as_deref(),
                &scored.scores,
            );
        }
        let Some(policy) = self.policy.as_mut() else {
            scratch.running_ids = running_ids;
            scratch.newly_flagged = newly_flagged;
            return true;
        };
        let budget = policy.clone_budget();
        let view = BarrierView {
            job: self.spec.job,
            ordinal,
            time,
            threshold: self.spec.threshold,
            phase: nurd_data::JobPhase::Scoring,
            scores: &scored.scores,
            flagged: &newly_flagged,
            clones_remaining: budget.map(|b| b.saturating_sub(self.clones_used)),
            nodes: self.nodes.as_deref(),
            backlog,
        };
        let decisions = policy.decide(&view);
        for (task, action) in decisions {
            if matches!(action, MitigationAction::Ignore) {
                continue;
            }
            // `running_ids` is task-id sorted by construction, so the
            // membership probe (which also bounds `task`) can bisect.
            let actionable = running_ids.binary_search(&task).is_ok() && !self.actioned[task];
            let within_budget = !matches!(action, MitigationAction::Clone)
                || budget.is_none_or(|b| self.clones_used < b);
            if !actionable || !within_budget {
                stats.add(&stats.mitigation_suppressed, 1);
                continue;
            }
            match action {
                MitigationAction::Clone => {
                    self.clones_used += 1;
                    stats.add(&stats.clones_issued, 1);
                }
                MitigationAction::Quarantine => stats.add(&stats.quarantines_issued, 1),
                MitigationAction::Ignore => unreachable!("filtered above"),
            }
            self.actioned[task] = true;
            self.actions.push(ActionRecord {
                job: self.spec.job,
                ordinal,
                time,
                task,
                action,
            });
        }
        scratch.running_ids = running_ids;
        scratch.newly_flagged = newly_flagged;
        true
    }

    /// Per-task ground truth against the job's threshold — the labels the
    /// report's confusion accounting and the health observer both use. A
    /// task whose completion never arrived outlived the stream and is
    /// counted a straggler.
    fn straggled(&self) -> Vec<bool> {
        self.tasks
            .iter()
            .map(|t| t.latency.is_none_or(|l| l >= self.spec.threshold))
            .collect()
    }

    /// Post-hoc scoring once the stream is exhausted. A task whose
    /// completion never arrived outlived the stream and is counted as a
    /// straggler (it certainly outlived `τ_stra` if the stream covered
    /// the job's horizon).
    fn report(&self, finalized: FinalizeReason) -> JobReport {
        let truth: Vec<bool> = self.straggled();
        let flagged_at: Vec<Option<usize>> = self.tasks.iter().map(|t| t.flagged_at).collect();
        let outcome = outcome_from_flags(
            self.spec.threshold,
            self.warmup_at
                .unwrap_or_else(|| self.spec.checkpoints.saturating_sub(1)),
            self.spec.checkpoints,
            flagged_at,
            &truth,
        );
        JobReport {
            job: self.spec.job,
            checkpoints_scored: self.checkpoints_scored,
            finalized,
            outcome,
            actions: self.actions.clone(),
        }
    }

    /// Serializes the job for a snapshot. Mode tag 0 = *blob*: the
    /// predictor's own `snapshot_state` plus the shard-side task
    /// bookkeeping. Mode tag 1 = *history*: the job's accepted event
    /// stream (the bookkeeping is re-derived by replaying it).
    fn encode(&self, enc: &mut Encoder) {
        match &self.history {
            Some(history) => {
                enc.put_u8(1);
                self.spec.encode(enc);
                history.encode(enc);
            }
            None => {
                enc.put_u8(0);
                self.spec.encode(enc);
                let blob = self.predictor.snapshot_state().unwrap_or_default();
                enc.put_bytes(&blob);
                enc.put_usize(self.tasks.len());
                for task in &self.tasks {
                    task.features.encode(enc);
                    task.latency.encode(enc);
                    task.flagged_at.encode(enc);
                    enc.put_bool(task.seen);
                }
                enc.put_usize(self.finished_total);
                self.warmup_at.encode(enc);
                enc.put_usize(self.barriers_seen);
                enc.put_usize(self.checkpoints_scored);
                self.nodes.encode(enc);
            }
        }
        // Both modes persist the committed action log (the `actioned`
        // marks and clone-budget consumption are derived from it at
        // decode), so budget enforcement survives a crash even when the
        // policy object itself is rebuilt from the factory.
        self.actions.encode(enc);
    }

    /// Restores the action log and the bookkeeping derived from it.
    fn adopt_actions(&mut self, actions: Vec<ActionRecord>) {
        self.actioned = vec![false; self.spec.task_count];
        self.clones_used = 0;
        for record in &actions {
            if let Some(mark) = self.actioned.get_mut(record.task) {
                *mark = true;
            }
            if record.action == MitigationAction::Clone {
                self.clones_used += 1;
            }
        }
        self.actions = actions;
    }

    /// Rebuilds a job from its snapshot record: blob mode restores the
    /// predictor bit-for-bit via `restore_state` (rejection is the typed
    /// [`RecoverError::PredictorRestore`], never a half-restored job);
    /// history mode replays the retained events through a fresh factory
    /// predictor — deterministic, so it lands in the identical state.
    pub(crate) fn decode(
        dec: &mut Decoder<'_>,
        factory: &PredictorFactory,
        mitigator: Option<&MitigatorFactory>,
        warmup_fraction: f64,
    ) -> Result<Self, RecoverError> {
        let mode = dec.take_u8()?;
        let spec = JobSpec::decode(dec)?;
        let policy = mitigator.map(|m| m(&spec));
        let mut state = match mode {
            0 => {
                let blob = dec.take_bytes()?.to_vec();
                let predictor = factory(&spec);
                let job = spec.job;
                let mut state = JobState::new(spec, predictor, true, policy);
                if !state.predictor.restore_state(&blob) {
                    return Err(RecoverError::PredictorRestore(job));
                }
                let task_count = dec.take_len(16)?;
                let mut tasks = Vec::with_capacity(task_count);
                for _ in 0..task_count {
                    tasks.push(TaskState {
                        features: Checkpointable::decode(dec)?,
                        latency: Checkpointable::decode(dec)?,
                        flagged_at: Checkpointable::decode(dec)?,
                        seen: dec.take_bool()?,
                    });
                }
                state.tasks = tasks;
                state.finished_total = dec.take_usize()?;
                state.warmup_at = Checkpointable::decode(dec)?;
                state.barriers_seen = dec.take_usize()?;
                state.checkpoints_scored = dec.take_usize()?;
                state.nodes = Checkpointable::decode(dec)?;
                state
            }
            1 => {
                let history: Vec<TaskEvent> = Checkpointable::decode(dec)?;
                let predictor = factory(&spec);
                let mut state = JobState::new(spec, predictor, true, policy);
                // Replay counter bumps land in a throwaway: the pre-crash
                // bumps are already in the snapshot's persisted counters.
                // No observer either — the observer's own snapshot blob
                // already contains these barriers' observations.
                let replay_stats = ShardStats::default();
                for event in &history {
                    let applied =
                        state.apply(event.clone(), warmup_fraction, 0, None, &replay_stats);
                    debug_assert!(applied, "history events were accepted when retained");
                }
                state.history = Some(history);
                state
            }
            tag => {
                return Err(nurd_codec::CodecError::InvalidTag {
                    what: "JobState mode",
                    tag,
                }
                .into())
            }
        };
        // The persisted log is authoritative (a history replay with the
        // mitigator attached re-derives the identical log; without one it
        // derives none) — restore it and the bookkeeping it implies.
        let actions: Vec<ActionRecord> = Checkpointable::decode(dec)?;
        state.adopt_actions(actions);
        Ok(state)
    }

    /// Attaches a freshly-built policy to a job admitted before the
    /// mitigator existed (post-recovery attach). No-op if one is present.
    fn attach_policy(&mut self, mitigator: &MitigatorFactory) {
        if self.policy.is_none() {
            self.policy = Some(mitigator(&self.spec));
        }
    }
}

/// One shard of the engine: a disjoint set of *live* jobs and the reports
/// of jobs already finalized. The not-yet-applied events live **outside**
/// this struct, in the shard's [`nurd_runtime::Channel`] ingress queue —
/// a drain worker pops a batch from the channel and applies it here while
/// holding the shard's lock, so per-shard application order is the
/// channel's FIFO order no matter which worker drains. Shards share
/// nothing, which is the whole determinism argument — see
/// [`crate::Engine`].
pub(crate) struct Shard {
    jobs: BTreeMap<u64, JobState>,
    /// Reports of finalized jobs not yet taken by
    /// [`crate::EngineHandle::take_finalized`] or `finish`.
    finalized: BTreeMap<u64, JobReport>,
    /// Every job id this shard ever finalized — distinguishes *stale*
    /// events (job known, stream already closed) from orphans (job never
    /// admitted). A `BTreeSet<u64>` per job is the only state that
    /// survives finalization.
    finalized_ids: BTreeSet<u64>,
    warmup_fraction: f64,
    /// Within-job parallelism currently granted to this shard's oversized
    /// jobs by adaptive balancing (1 = sequential, the default).
    granted_threads: usize,
    /// Only jobs with at least this many tasks receive the grant.
    grant_min_tasks: usize,
    /// This shard's live WAL segment (`None` on non-persistent engines).
    /// Owned here so appends share the lock that orders application.
    wal: Option<WalWriter>,
    /// Per-job count of events this shard has popped from its ingress —
    /// the event's position in its producer stream, counted for *every*
    /// popped event (accepted, rejected, stale, or orphan alike), so a
    /// recovered producer knows exactly which suffix to re-push.
    events_seen: BTreeMap<u64, u64>,
    /// Donor-cache seeds captured at finalization, keyed by
    /// [`job_signature`] (latest finalization of a shape wins). Only
    /// populated on persistent engines.
    donors: BTreeMap<u64, DonorSeed>,
}

impl Shard {
    pub(crate) fn new(warmup_fraction: f64) -> Self {
        Shard {
            jobs: BTreeMap::new(),
            finalized: BTreeMap::new(),
            finalized_ids: BTreeSet::new(),
            warmup_fraction,
            granted_threads: 1,
            grant_min_tasks: usize::MAX,
            wal: None,
            events_seen: BTreeMap::new(),
            donors: BTreeMap::new(),
        }
    }

    /// Arms write-ahead logging (makes this shard persistent).
    pub(crate) fn install_wal(&mut self, wal: WalWriter) {
        self.wal = Some(wal);
    }

    /// Appends a batch to the WAL ahead of application; returns how many
    /// records were appended (0 on non-persistent shards).
    pub(crate) fn append_wal(&mut self, events: &[TaskEvent]) -> std::io::Result<usize> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(0);
        };
        for event in events {
            wal.append(event)?;
        }
        Ok(events.len())
    }

    /// Flushes + fsyncs this shard's WAL segment (no-op when absent).
    pub(crate) fn flush_wal(&mut self) -> std::io::Result<()> {
        match self.wal.as_mut() {
            Some(wal) => wal.flush_and_sync(),
            None => Ok(()),
        }
    }

    /// Seals the current WAL segment and starts a fresh one at `path`
    /// (the per-shard half of snapshot rotation).
    pub(crate) fn rotate_wal(&mut self, path: std::path::PathBuf) -> std::io::Result<()> {
        match self.wal.as_mut() {
            Some(wal) => wal.rotate(path),
            None => Ok(()),
        }
    }

    /// Serializes this shard's checkpointable state into `data` (live
    /// jobs, finalized ledger, durable-event counts, donor seeds) and
    /// folds its deterministic counters into `data.counters`.
    pub(crate) fn capture_into(&self, data: &mut SnapshotData, stats: &ShardStats) {
        for state in self.jobs.values() {
            let mut enc = Encoder::new();
            state.encode(&mut enc);
            data.jobs.push(enc.into_bytes());
        }
        data.finalized.extend(self.finalized.values().cloned());
        data.finalized_ids
            .extend(self.finalized_ids.iter().copied());
        for (&job, &count) in &self.events_seen {
            *data.events_seen.entry(job).or_insert(0) += count;
        }
        data.donors.extend(self.donors.values().cloned());
        let load = |c: &AtomicUsize| c.load(Ordering::Relaxed) as u64;
        let counters = &mut data.counters;
        counters.events_processed += load(&stats.events_processed);
        counters.orphan_events += load(&stats.orphan_events);
        counters.rejected_events += load(&stats.rejected_events);
        counters.stale_events += load(&stats.stale_events);
        counters.finalized_jobs += load(&stats.finalized_jobs);
        counters.poisoned_jobs += load(&stats.poisoned_jobs);
        counters.shed_events += load(&stats.shed_events);
        counters.rejected_ingress += load(&stats.rejected_ingress);
        counters.clones_issued += load(&stats.clones_issued);
        counters.quarantines_issued += load(&stats.quarantines_issued);
        counters.mitigation_suppressed += load(&stats.mitigation_suppressed);
    }

    /// Attaches policies (via `mitigator`) to live jobs that lack one —
    /// the late-attach path for services recovered or started before the
    /// mitigator was registered.
    pub(crate) fn attach_policies(&mut self, mitigator: &MitigatorFactory) {
        for job in self.jobs.values_mut() {
            job.attach_policy(mitigator);
        }
    }

    /// Installs a recovered live job (routing already done by the caller).
    pub(crate) fn adopt_job(&mut self, state: JobState, stats: &ShardStats) {
        if self.jobs.insert(state.job(), state).is_none() {
            stats.add(&stats.live_jobs, 1);
        }
    }

    /// Installs a recovered finalized report (and its ledger entry).
    pub(crate) fn adopt_finalized(&mut self, report: JobReport) {
        self.finalized_ids.insert(report.job);
        self.finalized.insert(report.job, report);
    }

    /// Installs a recovered finalized-ledger id (report already taken
    /// before the crash — only stale-event detection needs it).
    pub(crate) fn adopt_finalized_id(&mut self, job: u64) {
        self.finalized_ids.insert(job);
    }

    /// Installs a recovered durable-event count for `job`.
    pub(crate) fn adopt_events_seen(&mut self, job: u64, count: u64) {
        *self.events_seen.entry(job).or_insert(0) += count;
    }

    /// Installs a recovered donor seed (keyed by its signature).
    pub(crate) fn adopt_donor(&mut self, seed: DonorSeed) {
        self.donors.insert(seed.signature, seed);
    }

    /// This shard's donor seeds, signature order (observability/tests).
    pub(crate) fn donor_seeds(&self) -> Vec<DonorSeed> {
        self.donors.values().cloned().collect()
    }

    /// This shard's per-job durable-event counts.
    pub(crate) fn events_seen(&self) -> &BTreeMap<u64, u64> {
        &self.events_seen
    }

    /// Lifecycle phase of `job`, if this shard has ever admitted it.
    pub(crate) fn phase_of(&self, job: u64) -> Option<JobPhase> {
        if self.finalized_ids.contains(&job) {
            return Some(JobPhase::Finalized);
        }
        self.jobs.get(&job).map(JobState::phase)
    }

    /// Adjusts the within-job parallelism grant (adaptive balancing).
    /// Propagates to every live job at or above `min_tasks` tasks and is
    /// remembered for jobs admitted while the grant holds. Counted in
    /// [`ShardStats::balance_boosts`] on each off→on transition. Safe at
    /// any moment: [`OnlinePredictor::set_parallelism`] is contractually
    /// bit-identical across thread counts, so flipping it mid-job changes
    /// wall-clock only.
    pub(crate) fn set_parallelism(&mut self, threads: usize, min_tasks: usize, stats: &ShardStats) {
        let threads = threads.max(1);
        if threads == self.granted_threads && (threads == 1 || min_tasks == self.grant_min_tasks) {
            return;
        }
        if self.granted_threads == 1 && threads > 1 {
            stats.add(&stats.balance_boosts, 1);
        }
        self.granted_threads = threads;
        self.grant_min_tasks = if threads == 1 { usize::MAX } else { min_tasks };
        for job in self.jobs.values_mut() {
            if job.spec.task_count >= self.grant_min_tasks {
                job.predictor.set_parallelism(threads);
            } else if threads == 1 {
                job.predictor.set_parallelism(1);
            }
        }
    }

    /// Moves `job` from live to finalized: emits its report and drops its
    /// entire state — this is what bounds resident memory to live jobs.
    /// On persistent engines a healthy finalized job additionally leaves
    /// its predictor state behind as a [`DonorSeed`] for the snapshot's
    /// donor cache (poisoned predictors are never donated).
    fn finalize(
        &mut self,
        job: u64,
        reason: FinalizeReason,
        observer: Option<&dyn HealthObserver>,
        stats: &ShardStats,
    ) {
        if let Some(state) = self.jobs.remove(&job) {
            if self.wal.is_some() && reason != FinalizeReason::Poisoned {
                if let Some(blob) = state.predictor.snapshot_state() {
                    let signature = job_signature(&state.spec);
                    self.donors.insert(
                        signature,
                        DonorSeed {
                            signature,
                            job,
                            predictor: state.predictor.name().to_owned(),
                            state: blob,
                        },
                    );
                }
            }
            let report = state.report(reason);
            if let Some(observer) = observer {
                observer.observe_finalized(&report, state.nodes.as_deref(), &state.straggled());
            }
            self.finalized_ids.insert(job);
            self.finalized.insert(job, report);
            stats
                .live_jobs
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            stats.add(&stats.finalized_jobs, 1);
        }
    }

    /// Applies a batch of events in the order given (the caller pops them
    /// FIFO from the shard's ingress channel while holding this shard's
    /// lock, so batch order **is** stream order).
    ///
    /// * `JobStart` admits an unseen job through `factory` (a restart of a
    ///   *live* job resets it to a fresh predictor; a restart of a
    ///   finalized job id is stale — ids are fleet-unique).
    /// * `JobEnd` (or a barrier completing the stream) finalizes the job.
    /// * Events for unknown jobs count as orphans; events for finalized
    ///   jobs count as stale; structurally invalid events (see
    ///   [`JobState::apply`]) count as rejected. None aborts the drain.
    pub(crate) fn apply_batch(
        &mut self,
        events: impl IntoIterator<Item = TaskEvent>,
        factory: &PredictorFactory,
        mitigator: Option<&MitigatorFactory>,
        observer: Option<&dyn HealthObserver>,
        backlog: usize,
        stats: &ShardStats,
    ) {
        for event in events {
            stats.add(&stats.events_processed, 1);
            *self.events_seen.entry(event.job()).or_insert(0) += 1;
            match event {
                TaskEvent::JobStart { spec } => {
                    if self.finalized_ids.contains(&spec.job) {
                        stats.add(&stats.stale_events, 1);
                    } else {
                        let mut predictor = factory(&spec);
                        if spec.task_count >= self.grant_min_tasks {
                            predictor.set_parallelism(self.granted_threads);
                        }
                        let policy = mitigator.map(|m| m(&spec));
                        let state = JobState::new(spec, predictor, self.wal.is_some(), policy);
                        if self.jobs.insert(state.job(), state).is_none() {
                            stats.add(&stats.live_jobs, 1);
                        }
                    }
                }
                TaskEvent::JobEnd { job, .. } => {
                    if self.jobs.contains_key(&job) {
                        self.finalize(job, FinalizeReason::JobEnd, observer, stats);
                    } else if self.finalized_ids.contains(&job) {
                        stats.add(&stats.stale_events, 1);
                    } else {
                        stats.add(&stats.orphan_events, 1);
                    }
                }
                event => {
                    let job_id = event.job();
                    let at_barrier = matches!(event, TaskEvent::Barrier { .. });
                    match self.jobs.get_mut(&job_id) {
                        Some(job) => {
                            // History-mode jobs retain accepted events;
                            // clone before apply consumes the event.
                            let retained = job.history.is_some().then(|| event.clone());
                            let warmup_fraction = self.warmup_fraction;
                            match catch_unwind(AssertUnwindSafe(|| {
                                job.apply(event, warmup_fraction, backlog, observer, stats)
                            })) {
                                Err(_) => {
                                    // Predictor panic: quarantine *this*
                                    // job; every other job on the shard —
                                    // and the drain worker — lives on.
                                    stats.add(&stats.poisoned_jobs, 1);
                                    self.finalize(
                                        job_id,
                                        FinalizeReason::Poisoned,
                                        observer,
                                        stats,
                                    );
                                }
                                Ok(false) => stats.add(&stats.rejected_events, 1),
                                Ok(true) => {
                                    if let (Some(history), Some(event)) =
                                        (job.history.as_mut(), retained)
                                    {
                                        history.push(event);
                                    }
                                    if at_barrier && job.stream_complete() {
                                        // Only a *closed barrier* may trigger
                                        // all-tasks-finished finalization — see
                                        // `JobState::stream_complete`.
                                        self.finalize(
                                            job_id,
                                            FinalizeReason::StreamComplete,
                                            observer,
                                            stats,
                                        );
                                    }
                                }
                            }
                        }
                        None if self.finalized_ids.contains(&job_id) => {
                            stats.add(&stats.stale_events, 1);
                        }
                        None => stats.add(&stats.orphan_events, 1),
                    }
                }
            }
        }
    }

    /// Takes the reports of jobs finalized since the last take — the
    /// mid-stream observation channel.
    pub(crate) fn take_finalized(&mut self) -> Vec<JobReport> {
        std::mem::take(&mut self.finalized).into_values().collect()
    }

    /// Finalizes every still-live job (reason
    /// [`FinalizeReason::EngineFinish`]) and returns all not-yet-taken
    /// reports, job-id order.
    pub(crate) fn finish_reports(
        &mut self,
        observer: Option<&dyn HealthObserver>,
        stats: &ShardStats,
    ) -> Vec<JobReport> {
        let live: Vec<u64> = self.jobs.keys().copied().collect();
        for job in live {
            self.finalize(job, FinalizeReason::EngineFinish, observer, stats);
        }
        self.take_finalized()
    }
}
