//! Versioned snapshot files: the full-state half of the persistence
//! subsystem (the incremental half is [`crate::wal`]).
//!
//! A snapshot is the engine's entire checkpointable state at one
//! instant: every live job (spec, predictor state, task bookkeeping),
//! every not-yet-taken finalized report, the finalized-id ledger, the
//! per-job durable-event counts, the donor-cache seeds, and the
//! deterministic counters. On-disk shape:
//!
//! ```text
//! [8B magic "NURDSNAP"][4B format version LE]
//! [frame: header — counters, events_seen, finalized ids + reports,
//!         donor seeds, live-job count]
//! [frame: job 0][frame: job 1]…              one frame per live job
//! ```
//!
//! Every frame is `[len][crc32][payload]` ([`nurd_codec::write_frame`]),
//! so each record is individually length- and checksum-guarded; a torn
//! write, a bit flip, a wrong file, or a future format each map to a
//! distinct typed [`RecoverError`] — never a panic, never a silent
//! partial load. Files are written to a `.tmp` sibling, fsynced, then
//! renamed into place, so a crash mid-snapshot leaves the previous
//! generation untouched.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use nurd_codec::{read_frame, write_frame, Checkpointable, Decoder, Encoder};

use crate::engine::JobReport;
use crate::persist::{DonorSeed, RecoverError};

/// First 8 bytes of every snapshot file.
pub(crate) const SNAPSHOT_MAGIC: [u8; 8] = *b"NURDSNAP";
/// Format version this build writes and the only one it reads. Version 2
/// added mitigation state: per-job action logs (inside each job record
/// and each [`JobReport`]) and the mitigation counters below. Version 3
/// added node-health state: each blob-mode job record carries its node
/// placement, and the header carries the attached
/// [`HealthObserver`](crate::HealthObserver)'s state blob.
pub(crate) const SNAPSHOT_VERSION: u32 = 3;

/// The deterministic fleet-wide counters a snapshot carries, so a
/// recovered engine's accounting continues where the crashed one's
/// stopped (scheduling-dependent counters — blocked pushes, balance
/// boosts, backlogs — deliberately reset on restart).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct PersistedCounters {
    pub(crate) events_processed: u64,
    pub(crate) orphan_events: u64,
    pub(crate) rejected_events: u64,
    pub(crate) stale_events: u64,
    pub(crate) finalized_jobs: u64,
    pub(crate) poisoned_jobs: u64,
    pub(crate) shed_events: u64,
    pub(crate) rejected_ingress: u64,
    pub(crate) clones_issued: u64,
    pub(crate) quarantines_issued: u64,
    pub(crate) mitigation_suppressed: u64,
}

impl Checkpointable for PersistedCounters {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.events_processed);
        enc.put_u64(self.orphan_events);
        enc.put_u64(self.rejected_events);
        enc.put_u64(self.stale_events);
        enc.put_u64(self.finalized_jobs);
        enc.put_u64(self.poisoned_jobs);
        enc.put_u64(self.shed_events);
        enc.put_u64(self.rejected_ingress);
        enc.put_u64(self.clones_issued);
        enc.put_u64(self.quarantines_issued);
        enc.put_u64(self.mitigation_suppressed);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(PersistedCounters {
            events_processed: dec.take_u64()?,
            orphan_events: dec.take_u64()?,
            rejected_events: dec.take_u64()?,
            stale_events: dec.take_u64()?,
            finalized_jobs: dec.take_u64()?,
            poisoned_jobs: dec.take_u64()?,
            shed_events: dec.take_u64()?,
            rejected_ingress: dec.take_u64()?,
            clones_issued: dec.take_u64()?,
            quarantines_issued: dec.take_u64()?,
            mitigation_suppressed: dec.take_u64()?,
        })
    }
}

/// A snapshot file's content with live jobs still in their encoded form
/// (decoding a job needs the [`PredictorFactory`](crate::PredictorFactory)
/// and the engine's warmup fraction, which the file-level reader does
/// not have). Frame CRCs have already been verified for every field.
#[derive(Debug, Default)]
pub(crate) struct SnapshotData {
    pub(crate) counters: PersistedCounters,
    /// Per-job count of events durably applied (snapshot point).
    pub(crate) events_seen: BTreeMap<u64, u64>,
    /// Every job id ever finalized (stale-event detection survives).
    pub(crate) finalized_ids: Vec<u64>,
    /// Finalized reports not yet taken at the snapshot point.
    pub(crate) finalized: Vec<JobReport>,
    /// Donor-cache seeds (see [`DonorSeed`]).
    pub(crate) donors: Vec<DonorSeed>,
    /// The attached [`HealthObserver`](crate::HealthObserver)'s state
    /// blob at the snapshot point (empty = none attached, or nothing to
    /// persist).
    pub(crate) observer: Vec<u8>,
    /// One encoded `JobState` per live job.
    pub(crate) jobs: Vec<Vec<u8>>,
}

/// Writes `data` to `path` atomically: `.tmp` sibling, flush, fsync,
/// rename, directory fsync. A crash anywhere in the middle leaves no
/// `snap-*.bin` at `path` (recovery falls back to the previous
/// generation, which is why [`PersistenceConfig::retain_generations`](crate::PersistenceConfig::retain_generations)
/// is clamped to ≥ 2).
pub(crate) fn write_snapshot_file(path: &Path, data: &SnapshotData) -> std::io::Result<()> {
    let tmp = path.with_extension("bin.tmp");
    let mut out = BufWriter::new(File::create(&tmp)?);
    out.write_all(&SNAPSHOT_MAGIC)?;
    out.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    let mut header = Encoder::new();
    data.counters.encode(&mut header);
    data.events_seen.encode(&mut header);
    data.finalized_ids.encode(&mut header);
    data.finalized.encode(&mut header);
    data.donors.encode(&mut header);
    header.put_bytes(&data.observer);
    header.put_usize(data.jobs.len());
    write_frame(&mut out, header.as_slice())?;
    for job in &data.jobs {
        write_frame(&mut out, job)?;
    }
    out.flush()?;
    out.get_ref().sync_data()?;
    drop(out);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable; best-effort (some filesystems
        // refuse directory handles).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), RecoverError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            RecoverError::Truncated
        } else {
            RecoverError::Io(e)
        }
    })
}

/// Reads and fully validates a snapshot file's framing: magic, format
/// version, and every record's length + CRC32. Job payloads stay
/// encoded (see [`SnapshotData`]).
pub(crate) fn read_snapshot_data(path: &Path) -> Result<SnapshotData, RecoverError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    read_exact_or_truncated(&mut reader, &mut magic)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(RecoverError::WrongMagic);
    }
    let mut version_bytes = [0u8; 4];
    read_exact_or_truncated(&mut reader, &mut version_bytes)?;
    let version = u32::from_le_bytes(version_bytes);
    if version != SNAPSHOT_VERSION {
        return Err(RecoverError::UnsupportedVersion(version));
    }
    let header = read_frame(&mut reader)?.ok_or(RecoverError::Truncated)?;
    let mut dec = Decoder::new(&header);
    let counters = PersistedCounters::decode(&mut dec)?;
    let events_seen = Checkpointable::decode(&mut dec)?;
    let finalized_ids = Checkpointable::decode(&mut dec)?;
    let finalized = Checkpointable::decode(&mut dec)?;
    let donors = Checkpointable::decode(&mut dec)?;
    let observer = dec.take_bytes()?.to_vec();
    let job_count = dec.take_usize()?;
    let mut jobs = Vec::with_capacity(job_count.min(1 << 20));
    for _ in 0..job_count {
        jobs.push(read_frame(&mut reader)?.ok_or(RecoverError::Truncated)?);
    }
    Ok(SnapshotData {
        counters,
        events_seen,
        finalized_ids,
        finalized,
        donors,
        observer,
        jobs,
    })
}

/// What [`read_snapshot`] found in a (valid) snapshot file — the
/// operator's and the corruption tests' view of an on-disk artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Live (mid-stream) jobs the snapshot can resume.
    pub live_jobs: usize,
    /// Finalized reports carried (not yet taken at capture time).
    pub finalized_reports: usize,
    /// Job ids in the finalized ledger (stale-event detection).
    pub finalized_ids: usize,
    /// Donor-cache seeds riding the snapshot.
    pub donor_seeds: usize,
    /// Total durably-applied events across all jobs at capture time.
    pub events_recorded: u64,
}

/// Validates a snapshot file end to end — magic, format version, every
/// record's length and CRC32 — and summarizes what it holds. Every
/// corrupt-artifact shape yields a typed [`RecoverError`]; this is the
/// probe the corruption tests (and a `file`-style operator check) use
/// without needing a predictor factory.
pub fn read_snapshot(path: &Path) -> Result<SnapshotStats, RecoverError> {
    let data = read_snapshot_data(path)?;
    Ok(SnapshotStats {
        live_jobs: data.jobs.len(),
        finalized_reports: data.finalized.len(),
        finalized_ids: data.finalized_ids.len(),
        donor_seeds: data.donors.len(),
        events_recorded: data.events_seen.values().sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotData {
        let mut events_seen = BTreeMap::new();
        events_seen.insert(7u64, 12u64);
        events_seen.insert(9u64, 3u64);
        SnapshotData {
            counters: PersistedCounters {
                events_processed: 15,
                finalized_jobs: 1,
                ..PersistedCounters::default()
            },
            events_seen,
            finalized_ids: vec![9],
            finalized: Vec::new(),
            donors: Vec::new(),
            observer: vec![0xAB, 0xCD],
            jobs: vec![vec![1, 2, 3], vec![4, 5]],
        }
    }

    #[test]
    fn snapshot_file_round_trips() {
        let dir = std::env::temp_dir().join("nurd-snap-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-1.bin");
        write_snapshot_file(&path, &sample()).unwrap();
        let back = read_snapshot_data(&path).unwrap();
        assert_eq!(back.counters, sample().counters);
        assert_eq!(back.events_seen, sample().events_seen);
        assert_eq!(back.jobs, sample().jobs);
        let stats = read_snapshot(&path).unwrap();
        assert_eq!(stats.live_jobs, 2);
        assert_eq!(stats.events_recorded, 15);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_corruption_shape_is_a_typed_error() {
        let dir = std::env::temp_dir().join("nurd-snap-test-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-1.bin");
        write_snapshot_file(&path, &sample()).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Wrong magic.
        std::fs::write(&path, b"NOTASNAPxxxxyyyy").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(RecoverError::WrongMagic)
        ));

        // Future format version.
        let mut future = pristine.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(RecoverError::UnsupportedVersion(99))
        ));

        // Truncation at every prefix is Truncated or WrongMagic — never
        // a panic, never Ok.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            match read_snapshot(&path) {
                Err(
                    RecoverError::Truncated
                    | RecoverError::WrongMagic
                    | RecoverError::ChecksumMismatch,
                ) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }

        // A flipped payload bit fails its record's CRC.
        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(RecoverError::ChecksumMismatch)
        ));

        std::fs::remove_dir_all(&dir).ok();
    }
}
