//! Job lifecycle and overload-control vocabulary for the streaming engine.
//!
//! A job served by [`Engine`](crate::Engine) moves through four phases:
//!
//! ```text
//!            JobStart drained          first quorum barrier
//! (unknown) ────────────────► Admitted ──► Warming ──► Scoring ──► Finalized
//!                                  │            │           │          ▲
//!                                  └────────────┴───────────┴──────────┘
//!                 JobEnd · stream complete (last barrier or all tasks
//!                 finished at a barrier) · Engine::finish
//! ```
//!
//! Finalization emits the job's [`JobReport`](crate::JobReport) and drops
//! its entire in-shard state (predictor, task features, flags), which is
//! what bounds the engine's resident memory to the *live* jobs rather
//! than every job ever seen. `docs/OPERATIONS.md` walks the state
//! machine from an operator's perspective.

// `JobPhase` (see the state machine above) is defined in `nurd-data` so
// mitigation policies can receive it inside `nurd_data::BarrierView`
// without depending on this crate; it is re-exported here, where it has
// always lived, and returned by `Engine::job_phase`.
pub use nurd_data::JobPhase;

/// Why a job was finalized. Deterministic for a given event stream — it
/// depends only on the job's own event prefix, never on shard count or
/// drain timing — so it is safe to carry inside the determinism-checked
/// [`JobReport`](crate::JobReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeReason {
    /// An explicit [`TaskEvent::JobEnd`](nurd_data::TaskEvent::JobEnd)
    /// arrived.
    JobEnd,
    /// The stream completed on its own: the job's last declared barrier
    /// closed, or every task had finished by a closed barrier (nothing
    /// was left to score — past the last completion the clock is at or
    /// beyond `τ_stra`, so the revelation rule has already ended the
    /// prediction window).
    StreamComplete,
    /// The operator called [`Engine::finish`](crate::Engine::finish)
    /// while the job was still live.
    EngineFinish,
    /// The job's predictor panicked during event application. The job is
    /// *quarantined*: its state up to the panic is reported, every later
    /// event of its stream counts as stale, and the drain worker (and
    /// every other job on the shard) keeps running. Counted in
    /// [`EngineStats::poisoned_jobs`](crate::EngineStats::poisoned_jobs).
    /// The one lifecycle reason that is **not** deterministic protocol
    /// output — it marks a predictor bug, so its report carries whatever
    /// flags stood when the predictor died.
    Poisoned,
}

impl nurd_codec::Checkpointable for FinalizeReason {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_u8(match self {
            FinalizeReason::JobEnd => 0,
            FinalizeReason::StreamComplete => 1,
            FinalizeReason::EngineFinish => 2,
            FinalizeReason::Poisoned => 3,
        });
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        match dec.take_u8()? {
            0 => Ok(FinalizeReason::JobEnd),
            1 => Ok(FinalizeReason::StreamComplete),
            2 => Ok(FinalizeReason::EngineFinish),
            3 => Ok(FinalizeReason::Poisoned),
            tag => Err(nurd_codec::CodecError::InvalidTag {
                what: "FinalizeReason",
                tag,
            }),
        }
    }
}

/// What [`Engine::push`](crate::Engine::push) does when the target
/// shard's ingress queue is at [`EngineConfig::queue_capacity`](crate::EngineConfig::queue_capacity).
///
/// Only [`OverloadPolicy::Block`] preserves the engine's determinism
/// contract (it loses no events — the producer pays by draining the
/// shard inline). The shedding policies trade events for bounded memory
/// and are accounted in [`OverloadCounters`]; any per-job stream they
/// puncture degrades gracefully (later events of that job may be
/// rejected by structural validation, never panic a drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Apply back-pressure: the pushing thread drains the full shard
    /// in-line, then enqueues. No events are lost; determinism holds.
    #[default]
    Block,
    /// Drop the *oldest* queued event to make room for the new one —
    /// favors fresh signal under sustained overload.
    ShedOldest,
    /// Drop the *incoming* event — favors completing what is already
    /// queued.
    RejectNew,
}

/// Overload *loss* accounting, per shard and summed fleet-wide in
/// [`EngineReport`](crate::EngineReport) /
/// [`EngineStats`](crate::EngineStats). Both counters stay zero while
/// the configured capacity is never hit (the unbounded default) and
/// under the lossless [`OverloadPolicy::Block`] — nonzero values are
/// exactly the cases where determinism was forfeited, so carrying them
/// in the determinism-checked report is sound. The lossless-but-
/// scheduling-dependent count of blocked pushes lives in
/// [`EngineStats::blocked_pushes`](crate::EngineStats::blocked_pushes)
/// instead (like `events_per_shard`, it varies with shard count and
/// drain timing while the report must not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadCounters {
    /// Queued events dropped under [`OverloadPolicy::ShedOldest`].
    pub shed_events: usize,
    /// Incoming events dropped under [`OverloadPolicy::RejectNew`].
    pub rejected_ingress: usize,
}

impl OverloadCounters {
    /// Element-wise sum — used to aggregate shard counters fleet-wide.
    #[must_use]
    pub fn merged(self, other: OverloadCounters) -> OverloadCounters {
        OverloadCounters {
            shed_events: self.shed_events + other.shed_events,
            rejected_ingress: self.rejected_ingress + other.rejected_ingress,
        }
    }

    /// Total events *lost* to overload (shed + rejected ingress).
    #[must_use]
    pub fn lost_events(&self) -> usize {
        self.shed_events + self.rejected_ingress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_elementwise_and_report_losses() {
        let a = OverloadCounters {
            shed_events: 2,
            rejected_ingress: 3,
        };
        let b = OverloadCounters {
            shed_events: 20,
            rejected_ingress: 30,
        };
        let m = a.merged(b);
        assert_eq!(m.shed_events, 22);
        assert_eq!(m.rejected_ingress, 33);
        assert_eq!(m.lost_events(), 55);
    }

    #[test]
    fn default_policy_is_the_lossless_one() {
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::Block);
        assert_eq!(OverloadCounters::default().lost_events(), 0);
    }
}
