//! The background ingestion service: a [`DrainService`] of workers on a
//! dedicated [`nurd_runtime::ThreadPool`] that continuously drains the
//! engine's shards, so producers only ever push.
//!
//! Thread topology (see `docs/OPERATIONS.md` for sizing guidance):
//!
//! ```text
//!  producer threads (yours, any number)          EngineService
//!  ───────────────────────────────────          ─────────────
//!  EngineHandle::push(&self) ──hash──► per-shard Channel (bounded:
//!    Block = true blocking send          OverloadPolicy on full)
//!    • sleeps on the channel                 │
//!    • woken by the next drain pop           ▼
//!                                    DrainService (coordinator thread
//!                                      + ThreadPool of drain workers):
//!                                      scan shards, try_lock, pop a
//!                                      batch, apply; park on the
//!                                      engine's Notifier when idle
//!                                          │
//!  take_finalized(&self) ◄───────── finalized JobReports
//!  close(self) ─► close ingress, drain to quiescence, join, finalize
//! ```
//!
//! A shard is drained by at most one worker at a time (popping and
//! applying happen under the shard's lock), so per-shard application
//! order is channel FIFO order and the determinism contract is the same
//! as the caller-driven engine's — worker count, like shard count,
//! changes wall-clock only.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use nurd_runtime::ThreadPool;

use crate::engine::{BlockMode, EngineCore, EngineHandle, EngineReport};
use crate::{EngineConfig, EngineStats, JobPhase, JobReport, PredictorFactory};

/// Tuning for the background drain loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Drain workers (total pool parallelism, coordinator included).
    /// `0` resolves to the machine's parallelism; either way the count
    /// is capped at the shard count (a shard is drained by one worker at
    /// a time, so extra workers could only idle) and clamped to ≥ 1.
    pub drain_workers: usize,
    /// Maximum events a worker pops from one shard per lock hold.
    /// Smaller batches bound the latency until a blocked producer wakes
    /// and until another worker can win the shard; larger batches
    /// amortize locking. The report is identical at any value.
    pub drain_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            drain_workers: 0,
            drain_batch: 256,
        }
    }
}

/// The background drain loop: a coordinator thread running
/// `drain_workers` worker loops on a dedicated [`ThreadPool`] scope.
/// Dropping it performs the full shutdown sequence (close ingress, let
/// the workers drain to quiescence, join them) — [`EngineService::close`]
/// is that plus the final report.
struct DrainService {
    core: Arc<EngineCore>,
    shutdown: Arc<AtomicBool>,
    /// Set by the coordinator if any drain worker panicked (a predictor
    /// bug, a poisoned shard). The ingress is closed at the same moment
    /// so blocked producers wake with their push rejected instead of
    /// sleeping forever; [`EngineService::close`]/`quiesce` re-raise the
    /// original panic payload rather than a generic poisoned-lock one.
    failed: Arc<AtomicBool>,
    coordinator: Option<JoinHandle<()>>,
}

impl DrainService {
    fn start(core: Arc<EngineCore>, config: &ServiceConfig) -> Self {
        let machine = std::thread::available_parallelism().map_or(1, usize::from);
        let workers = if config.drain_workers == 0 {
            machine
        } else {
            config.drain_workers
        }
        .min(core.shard_count())
        .max(1);
        let batch = config.drain_batch.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(AtomicBool::new(false));
        let coordinator = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let failed = Arc::clone(&failed);
            std::thread::Builder::new()
                .name("nurd-serve-drain".into())
                .spawn(move || {
                    // `workers` total parallelism: `workers − 1` pool
                    // threads plus this coordinator helping inside the
                    // scope — every spawned loop runs concurrently.
                    let pool = ThreadPool::new(workers);
                    pool.scope(|scope| {
                        for worker in 0..workers {
                            let core = &core;
                            let shutdown = &shutdown;
                            let failed = &failed;
                            scope.spawn(move || {
                                let run = catch_unwind(AssertUnwindSafe(|| {
                                    drain_worker(core, worker, batch, shutdown, failed);
                                }));
                                if let Err(payload) = run {
                                    // This worker died (predictor panic,
                                    // poisoned shard). Break the whole
                                    // service *immediately and
                                    // observably* — peers exit on the
                                    // flag, blocked producers wake with
                                    // a clean rejection, quiesce()
                                    // trips — rather than letting the
                                    // survivors serve a half-dead
                                    // engine. The re-raise hands the
                                    // payload to the scope, which
                                    // propagates the first one to the
                                    // coordinator for close() to
                                    // surface.
                                    failed.store(true, Ordering::Release);
                                    core.close_ingress();
                                    resume_unwind(payload);
                                }
                            });
                        }
                    });
                })
                .expect("spawning drain coordinator")
        };
        DrainService {
            core,
            shutdown,
            failed,
            coordinator: Some(coordinator),
        }
    }

    fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

impl Drop for DrainService {
    /// Shutdown sequence: stop accepting (blocked producers wake with
    /// their push rejected), tell the workers, wake everyone, wait.
    /// Workers exit only at quiescence (ingress closed *and* empty), so
    /// after the join every accepted event has been applied. Returns the
    /// coordinator's panic payload (if a worker died) via `join_panic`;
    /// `Drop` itself must not unwind, so a bare drop records the failure
    /// in `failed` and discards the payload — `EngineService::close`
    /// goes through [`DrainService::join_panic`] to re-raise it.
    fn drop(&mut self) {
        if self.join_panic().is_some() {
            self.failed.store(true, Ordering::Release);
        }
    }
}

impl DrainService {
    /// Runs the shutdown sequence (idempotent) and hands back the
    /// coordinator's panic payload, if any worker panicked.
    fn join_panic(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        self.core.close_ingress();
        self.shutdown.store(true, Ordering::Release);
        self.core.notifier().unpark();
        self.coordinator.take().and_then(|c| c.join().err())
    }
}

/// One worker's loop: scan all shards (start offset staggered per worker
/// so workers fan out instead of convoying), drain whatever it can win,
/// and park on the engine's notifier when a full scan finds nothing. The
/// epoch is snapshotted *before* the scan, so a push or a peer's drain
/// that races the scan un-parks immediately — no lost wake-ups, no
/// polling loops.
fn drain_worker(
    core: &EngineCore,
    worker: usize,
    batch: usize,
    shutdown: &AtomicBool,
    failed: &AtomicBool,
) {
    let shards = core.shard_count();
    // One pop buffer per worker, reused for every batch it ever drains.
    let mut buffer = Vec::with_capacity(batch);
    loop {
        // A peer died: the service is broken (its shard may be poisoned
        // mid-apply); stop serving rather than present a half-dead
        // engine as healthy.
        if failed.load(Ordering::Acquire) {
            return;
        }
        let epoch = core.notifier().epoch();
        let mut drained = 0;
        for offset in 0..shards {
            drained += core.drain_shard((worker + offset) % shards, batch, false, &mut buffer);
        }
        if drained > 0 {
            continue;
        }
        // Nothing won this scan. Quiescent shutdown: the ingress is
        // closed (no new work can arrive) and every channel is empty
        // (in-flight batches are someone else's, and that worker exits
        // after applying them).
        if shutdown.load(Ordering::Acquire) && core.total_backlog() == 0 {
            return;
        }
        core.notifier().park(epoch);
    }
}

/// A multi-job streaming engine run as a **concurrent service**:
/// producers on any number of threads push through cloned
/// [`EngineHandle`]s while the background `DrainService` continuously
/// applies, scores, and finalizes. This is the deployment shape the
/// ROADMAP's "heavy traffic" north star asks for; the caller-driven
/// [`Engine`](crate::Engine) remains as the single-threaded shim.
///
/// Under [`OverloadPolicy::Block`](crate::OverloadPolicy::Block) a push
/// to a full shard is a **true blocking send** — the producer sleeps
/// until a drain worker makes room — so saturation costs latency, never
/// events; the service-mode property test in `tests/service.rs` proves
/// per-job outcomes stay bit-for-bit equal to sequential replay with
/// real producer threads hammering a saturated engine.
///
/// # Example
///
/// ```
/// use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
/// use nurd_serve::{EngineConfig, EngineService, ServiceConfig};
/// # struct Never;
/// # impl OnlinePredictor for Never {
/// #     fn name(&self) -> &str { "NEVER" }
/// #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
/// # }
///
/// let service = EngineService::start(
///     EngineConfig::default(),
///     ServiceConfig::default(),
///     Box::new(|_| Box::new(Never)),
/// );
///
/// // Producers push from their own threads through cloned handles.
/// let producer = {
///     let handle = service.handle();
///     std::thread::spawn(move || {
///         handle.push(TaskEvent::JobStart {
///             spec: JobSpec { job: 7, threshold: 100.0, task_count: 1, feature_dim: 1, checkpoints: 1 },
///         });
///         handle.push(TaskEvent::Barrier { job: 7, ordinal: 0, time: 50.0 })
///     })
/// };
/// assert!(producer.join().unwrap(), "push accepted");
///
/// // close(): drain to quiescence, then the final report.
/// let report = service.close();
/// assert_eq!(report.jobs.len(), 1);
/// assert_eq!(report.events, 2);
/// ```
pub struct EngineService {
    core: Arc<EngineCore>,
    /// The service's own producer handle — the convenience `push`/`admit`
    /// methods below delegate here, so the accept/wake logic exists once.
    handle: EngineHandle,
    service: DrainService,
}

impl std::fmt::Debug for EngineService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineService")
            .field("core", &self.core)
            .finish()
    }
}

impl EngineService {
    /// Builds the engine and starts its background drain loop; events
    /// pushed through [`EngineService::handle`]s are applied without any
    /// further caller involvement, until [`EngineService::close`].
    #[must_use]
    pub fn start(config: EngineConfig, service: ServiceConfig, factory: PredictorFactory) -> Self {
        let core = Arc::new(EngineCore::new(config, factory));
        let service = DrainService::start(Arc::clone(&core), &service);
        let handle = EngineHandle::new(Arc::clone(&core), BlockMode::Sleep);
        EngineService {
            core,
            handle,
            service,
        }
    }

    /// A cloneable producer handle; make one per producer thread. Under
    /// [`OverloadPolicy::Block`](crate::OverloadPolicy::Block) its
    /// [`push`](EngineHandle::push) is a true blocking send.
    #[must_use]
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Pushes one event from the current thread (see
    /// [`EngineHandle::push`]).
    pub fn push(&self, event: nurd_data::TaskEvent) -> bool {
        self.handle.push(event)
    }

    /// Pushes a batch of events in order; returns how many were accepted.
    pub fn push_all(&self, events: impl IntoIterator<Item = nurd_data::TaskEvent>) -> usize {
        self.handle.push_all(events)
    }

    /// Convenience admission (see [`EngineHandle::admit`]).
    pub fn admit(&self, spec: nurd_data::JobSpec) -> bool {
        self.handle.admit(spec)
    }

    /// Takes the reports of jobs finalized since the last take — safe
    /// while the service is running (see [`EngineHandle::take_finalized`]).
    pub fn take_finalized(&self) -> Vec<JobReport> {
        self.handle.take_finalized()
    }

    /// Live scheduling diagnostics, polled without stopping the service
    /// (see [`EngineStats`]).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.handle.stats()
    }

    /// Where `job` sits in its lifecycle, judging by *drained* state.
    /// In service mode drains run in the background, so a just-pushed
    /// `JobStart` may briefly report `None`; [`EngineService::quiesce`]
    /// first if the test or caller needs the settled answer.
    #[must_use]
    pub fn job_phase(&self, job: u64) -> Option<JobPhase> {
        self.handle.job_phase(job)
    }

    /// Blocks until every event pushed *before this call* has been
    /// applied (ingress empty and no drain in flight). With producers
    /// still pushing concurrently this is a moving target — the method
    /// promises only that the pre-call backlog is gone; it is the
    /// settle-then-observe primitive for monitors and tests.
    pub fn quiesce(&self) {
        loop {
            let epoch = self.core.notifier().epoch();
            assert!(
                !self.service.failed(),
                "drain service died: a drain worker panicked (see the \
                 coordinator thread's panic output); the backlog will \
                 never settle"
            );
            if self.core.total_backlog() == 0 {
                // Channels are empty; popped-but-unapplied batches are
                // finished by waiting on each shard's lock once.
                self.core.settle_shards();
                if self.core.total_backlog() == 0 {
                    return;
                }
            } else {
                // Progress signal: workers unpark after every batch.
                self.core.notifier().park(epoch);
            }
        }
    }

    /// Shuts the service down and returns the final report: closes the
    /// ingress (later pushes fail; producers blocked in a send wake with
    /// their push rejected), lets the drain workers run the backlog down
    /// to quiescence, joins them, finalizes every still-live job
    /// ([`crate::FinalizeReason::EngineFinish`]), and reports everything
    /// not already handed out by [`EngineService::take_finalized`].
    #[must_use]
    pub fn close(self) -> EngineReport {
        let EngineService {
            core, mut service, ..
        } = self;
        // Run the full shutdown sequence and join the workers;
        // afterwards the core is quiescent by construction. If a drain
        // worker panicked, re-raise the *original* payload here — the
        // root cause — instead of tripping over a poisoned shard lock
        // inside finish_report with a generic message.
        if let Some(payload) = service.join_panic() {
            std::panic::resume_unwind(payload);
        }
        drop(service);
        core.finish_report()
    }
}
