//! The background ingestion service: a [`DrainService`] of workers on a
//! dedicated [`nurd_runtime::ThreadPool`] that continuously drains the
//! engine's shards, so producers only ever push.
//!
//! Thread topology (see `docs/OPERATIONS.md` for sizing guidance):
//!
//! ```text
//!  producer threads (yours, any number)          EngineService
//!  ───────────────────────────────────          ─────────────
//!  EngineHandle::push(&self) ──hash──► per-shard Channel (bounded:
//!    Block = true blocking send          OverloadPolicy on full)
//!    • sleeps on the channel                 │
//!    • woken by the next drain pop           ▼
//!                                    DrainService (coordinator thread
//!                                      + ThreadPool of drain workers):
//!                                      scan shards, try_lock, pop a
//!                                      batch, apply; park on the
//!                                      engine's Notifier when idle
//!                                          │
//!  take_finalized(&self) ◄───────── finalized JobReports
//!  close(self) ─► close ingress, drain to quiescence, join, finalize
//! ```
//!
//! A shard is drained by at most one worker at a time (popping and
//! applying happen under the shard's lock), so per-shard application
//! order is channel FIFO order and the determinism contract is the same
//! as the caller-driven engine's — worker count, like shard count,
//! changes wall-clock only.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use nurd_runtime::ThreadPool;

use crate::engine::{BlockMode, EngineCore, EngineHandle, EngineReport};
use crate::persist::{
    scan_dir, snapshot_path, wal_path, DonorSeed, FsyncPolicy, PersistenceConfig, RecoverError,
    RecoverReport,
};
use crate::snapshot::read_snapshot_data;
use crate::wal::{read_wal_segment, WalTail};
use crate::{
    EngineConfig, EngineStats, HealthObserver, JobPhase, JobReport, MitigatorFactory,
    PredictorFactory,
};

/// Tuning for the background drain loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Drain workers (total pool parallelism, coordinator included).
    /// `0` resolves to the machine's parallelism; either way the count
    /// is capped at the shard count (a shard is drained by one worker at
    /// a time, so extra workers could only idle) and clamped to ≥ 1.
    pub drain_workers: usize,
    /// Maximum events a worker pops from one shard per lock hold.
    /// Smaller batches bound the latency until a blocked producer wakes
    /// and until another worker can win the shard; larger batches
    /// amortize locking. The report is identical at any value.
    pub drain_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            drain_workers: 0,
            drain_batch: 256,
        }
    }
}

/// The background drain loop: a coordinator thread running
/// `drain_workers` worker loops on a dedicated [`ThreadPool`] scope.
/// Dropping it performs the full shutdown sequence (close ingress, let
/// the workers drain to quiescence, join them) — [`EngineService::close`]
/// is that plus the final report.
struct DrainService {
    core: Arc<EngineCore>,
    shutdown: Arc<AtomicBool>,
    /// Set by the coordinator if any drain worker panicked (a predictor
    /// bug, a poisoned shard). The ingress is closed at the same moment
    /// so blocked producers wake with their push rejected instead of
    /// sleeping forever; [`EngineService::close`]/`quiesce` re-raise the
    /// original panic payload rather than a generic poisoned-lock one.
    failed: Arc<AtomicBool>,
    coordinator: Option<JoinHandle<()>>,
}

impl DrainService {
    fn start(core: Arc<EngineCore>, config: &ServiceConfig, flush_every: Option<Duration>) -> Self {
        let machine = std::thread::available_parallelism().map_or(1, usize::from);
        let workers = if config.drain_workers == 0 {
            machine
        } else {
            config.drain_workers
        }
        .min(core.shard_count())
        .max(1);
        let batch = config.drain_batch.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(AtomicBool::new(false));
        // The background WAL flusher (FsyncPolicy::OnIdle) rides the same
        // pool as one extra scope task.
        let extra = usize::from(flush_every.is_some());
        let coordinator = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let failed = Arc::clone(&failed);
            std::thread::Builder::new()
                .name("nurd-serve-drain".into())
                .spawn(move || {
                    // `workers` (+ flusher) total parallelism: pool
                    // threads plus this coordinator helping inside the
                    // scope — every spawned loop runs concurrently.
                    let pool = ThreadPool::new(workers + extra);
                    pool.scope(|scope| {
                        if let Some(interval) = flush_every {
                            let core = &core;
                            let shutdown = &shutdown;
                            let failed = &failed;
                            scope.spawn(move || flush_worker(core, interval, shutdown, failed));
                        }
                        for worker in 0..workers {
                            let core = &core;
                            let shutdown = &shutdown;
                            let failed = &failed;
                            scope.spawn(move || {
                                let run = catch_unwind(AssertUnwindSafe(|| {
                                    drain_worker(core, worker, batch, shutdown, failed);
                                }));
                                if let Err(payload) = run {
                                    // This worker died (predictor panic,
                                    // poisoned shard). Break the whole
                                    // service *immediately and
                                    // observably* — peers exit on the
                                    // flag, blocked producers wake with
                                    // a clean rejection, quiesce()
                                    // trips — rather than letting the
                                    // survivors serve a half-dead
                                    // engine. The re-raise hands the
                                    // payload to the scope, which
                                    // propagates the first one to the
                                    // coordinator for close() to
                                    // surface.
                                    failed.store(true, Ordering::Release);
                                    core.close_ingress();
                                    resume_unwind(payload);
                                }
                            });
                        }
                    });
                })
                .expect("spawning drain coordinator")
        };
        DrainService {
            core,
            shutdown,
            failed,
            coordinator: Some(coordinator),
        }
    }

    fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

impl Drop for DrainService {
    /// Shutdown sequence: stop accepting (blocked producers wake with
    /// their push rejected), tell the workers, wake everyone, wait.
    /// Workers exit only at quiescence (ingress closed *and* empty), so
    /// after the join every accepted event has been applied. Returns the
    /// coordinator's panic payload (if a worker died) via `join_panic`;
    /// `Drop` itself must not unwind, so a bare drop records the failure
    /// in `failed` and discards the payload — `EngineService::close`
    /// goes through [`DrainService::join_panic`] to re-raise it.
    fn drop(&mut self) {
        if self.join_panic().is_some() {
            self.failed.store(true, Ordering::Release);
        }
    }
}

impl DrainService {
    /// Runs the shutdown sequence (idempotent) and hands back the
    /// coordinator's panic payload, if any worker panicked.
    fn join_panic(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        self.core.close_ingress();
        self.shutdown.store(true, Ordering::Release);
        self.core.notifier().unpark();
        self.coordinator.take().and_then(|c| c.join().err())
    }
}

/// One worker's loop: scan all shards (start offset staggered per worker
/// so workers fan out instead of convoying), drain whatever it can win,
/// and park on the engine's notifier when a full scan finds nothing. The
/// epoch is snapshotted *before* the scan, so a push or a peer's drain
/// that races the scan un-parks immediately — no lost wake-ups, no
/// polling loops.
fn drain_worker(
    core: &EngineCore,
    worker: usize,
    batch: usize,
    shutdown: &AtomicBool,
    failed: &AtomicBool,
) {
    let shards = core.shard_count();
    // One pop buffer per worker, reused for every batch it ever drains.
    let mut buffer = Vec::with_capacity(batch);
    loop {
        // A peer died: the service is broken (its shard may be poisoned
        // mid-apply); stop serving rather than present a half-dead
        // engine as healthy.
        if failed.load(Ordering::Acquire) {
            return;
        }
        let epoch = core.notifier().epoch();
        let mut drained = 0;
        for offset in 0..shards {
            drained += core.drain_shard((worker + offset) % shards, batch, false, &mut buffer);
        }
        if drained > 0 {
            continue;
        }
        // Nothing won this scan. Quiescent shutdown: the ingress is
        // closed (no new work can arrive) and every channel is empty
        // (in-flight batches are someone else's, and that worker exits
        // after applying them).
        if shutdown.load(Ordering::Acquire) && core.total_backlog() == 0 {
            return;
        }
        core.notifier().park(epoch);
    }
}

/// The background WAL flusher ([`FsyncPolicy::OnIdle`]): fsyncs every
/// shard's segment each `interval`, bounding what a hard kill can lose
/// to one interval's tail. A plain timed sleep, *not* a notifier park —
/// the notifier's epoch churns on every push and drain, so parking on it
/// with a timeout would busy-spin exactly when the engine is busiest.
/// Exits on shutdown (with one final flush) and on peer failure (the
/// failed flag — a panicked drain worker must not leave the flusher
/// keeping the coordinator scope alive forever). A flush I/O error stops
/// the flusher; the next *append* surfaces the failing disk as a worker
/// panic, which is the engine's observable-failure channel.
fn flush_worker(core: &EngineCore, interval: Duration, shutdown: &AtomicBool, failed: &AtomicBool) {
    while !shutdown.load(Ordering::Acquire) && !failed.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        if core.flush_wals().is_err() {
            return;
        }
    }
    let _ = core.flush_wals();
}

/// A multi-job streaming engine run as a **concurrent service**:
/// producers on any number of threads push through cloned
/// [`EngineHandle`]s while the background `DrainService` continuously
/// applies, scores, and finalizes. This is the deployment shape the
/// ROADMAP's "heavy traffic" north star asks for; the caller-driven
/// [`Engine`](crate::Engine) remains as the single-threaded shim.
///
/// Under [`OverloadPolicy::Block`](crate::OverloadPolicy::Block) a push
/// to a full shard is a **true blocking send** — the producer sleeps
/// until a drain worker makes room — so saturation costs latency, never
/// events; the service-mode property test in `tests/service.rs` proves
/// per-job outcomes stay bit-for-bit equal to sequential replay with
/// real producer threads hammering a saturated engine.
///
/// # Example
///
/// ```
/// use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
/// use nurd_serve::{EngineConfig, EngineService, ServiceConfig};
/// # struct Never;
/// # impl OnlinePredictor for Never {
/// #     fn name(&self) -> &str { "NEVER" }
/// #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
/// # }
///
/// let service = EngineService::start(
///     EngineConfig::default(),
///     ServiceConfig::default(),
///     Box::new(|_| Box::new(Never)),
/// );
///
/// // Producers push from their own threads through cloned handles.
/// let producer = {
///     let handle = service.handle();
///     std::thread::spawn(move || {
///         handle.push(TaskEvent::JobStart {
///             spec: JobSpec { job: 7, threshold: 100.0, task_count: 1, feature_dim: 1, checkpoints: 1 },
///         });
///         handle.push(TaskEvent::Barrier { job: 7, ordinal: 0, time: 50.0 })
///     })
/// };
/// assert!(producer.join().unwrap(), "push accepted");
///
/// // close(): drain to quiescence, then the final report.
/// let report = service.close();
/// assert_eq!(report.jobs.len(), 1);
/// assert_eq!(report.events, 2);
/// ```
pub struct EngineService {
    core: Arc<EngineCore>,
    /// The service's own producer handle — the convenience `push`/`admit`
    /// methods below delegate here, so the accept/wake logic exists once.
    handle: EngineHandle,
    /// `Some` while the drain loop runs; [`EngineService::close`] takes
    /// it (joining the workers) exactly once.
    service: Mutex<Option<DrainService>>,
    /// The first close's report — later closes return a clone instead of
    /// re-running shutdown (idempotence).
    closed: Mutex<Option<EngineReport>>,
}

impl std::fmt::Debug for EngineService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineService")
            .field("core", &self.core)
            .finish()
    }
}

/// Lock that shrugs off poisoning: the guarded state here (an `Option`
/// being taken / a cached report) has no invariant a panicked peer can
/// have broken halfway.
fn relock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EngineService {
    /// Builds the engine and starts its background drain loop; events
    /// pushed through [`EngineService::handle`]s are applied without any
    /// further caller involvement, until [`EngineService::close`].
    #[must_use]
    pub fn start(config: EngineConfig, service: ServiceConfig, factory: PredictorFactory) -> Self {
        Self::launch(Arc::new(EngineCore::new(config, factory)), &service)
    }

    /// Like [`EngineService::start`], but durable: every drained event is
    /// write-ahead-logged under `persistence.dir` before it is applied,
    /// [`EngineService::checkpoint`] / [`EngineService::close`] write
    /// versioned snapshots, and [`EngineService::recover`] can later
    /// rebuild the engine from that directory. Existing artifacts in the
    /// directory are left untouched (the new WAL generation starts past
    /// them); to actually *resume* from them, use `recover`.
    pub fn start_persistent(
        config: EngineConfig,
        service: ServiceConfig,
        persistence: PersistenceConfig,
        factory: PredictorFactory,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(&persistence.dir)?;
        let generation = scan_dir(&persistence.dir)?
            .max_generation()
            .map_or(0, |g| g + 1);
        let core = Arc::new(EngineCore::new_persistent(
            config,
            factory,
            persistence,
            generation,
        )?);
        Ok(Self::launch(core, &service))
    }

    /// Rebuilds a running service from a persistence directory: loads the
    /// newest snapshot that validates end to end (falling back past
    /// corrupt ones — counted in [`RecoverReport::recovery_fallbacks`]),
    /// replays every WAL segment at or past that snapshot's generation in
    /// ascending generation order, writes a fresh post-recovery snapshot,
    /// and only then starts the drain loop. The recovered engine's
    /// per-job state is bit-for-bit the state of an engine that applied
    /// the same durable prefix without ever crashing — the
    /// restart-equals-uninterrupted property `tests/recovery.rs` proves
    /// under random fault injection.
    ///
    /// Producers resume each job's stream from
    /// [`RecoverReport::events_seen`]: the count is how many of the job's
    /// events are already inside the recovered state.
    pub fn recover(
        persistence: PersistenceConfig,
        config: EngineConfig,
        service: ServiceConfig,
        factory: PredictorFactory,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        Self::recover_inner(persistence, config, service, factory, None, None)
    }

    /// Like [`EngineService::recover`], but installs `mitigator` *before*
    /// the snapshot is decoded and the WAL trail replays, so recovered
    /// jobs get their policies back and any barrier inside the replayed
    /// suffix decides actions exactly as the crashed engine would have.
    /// This is the recovery counterpart of
    /// [`EngineService::attach_mitigator`]: a run that attaches at start,
    /// crashes, and recovers through this method produces the same
    /// per-job action logs as one that never crashed.
    pub fn recover_with_mitigator(
        persistence: PersistenceConfig,
        config: EngineConfig,
        service: ServiceConfig,
        factory: PredictorFactory,
        mitigator: MitigatorFactory,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        Self::recover_inner(persistence, config, service, factory, Some(mitigator), None)
    }

    /// Like [`EngineService::recover`], but installs `observer` *before*
    /// the snapshot is decoded and the WAL trail replays: the snapshot's
    /// observer blob restores its pre-crash state (a rejected blob is
    /// [`RecoverError::ObserverRestore`]), and the replayed WAL suffix is
    /// then re-observed live — exactly once overall, because the blob was
    /// captured at the snapshot's WAL-rotation instant. This is the
    /// recovery counterpart of [`EngineService::attach_observer`]: a run
    /// that attaches at start, crashes, and recovers through this method
    /// leaves the observer in the same state as one that never crashed.
    /// Pass `mitigator` too when the crashed run had one attached.
    pub fn recover_with_observer(
        persistence: PersistenceConfig,
        config: EngineConfig,
        service: ServiceConfig,
        factory: PredictorFactory,
        mitigator: Option<MitigatorFactory>,
        observer: Arc<dyn HealthObserver>,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        Self::recover_inner(
            persistence,
            config,
            service,
            factory,
            mitigator,
            Some(observer),
        )
    }

    fn recover_inner(
        persistence: PersistenceConfig,
        config: EngineConfig,
        service: ServiceConfig,
        factory: PredictorFactory,
        mitigator: Option<MitigatorFactory>,
        observer: Option<Arc<dyn HealthObserver>>,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        std::fs::create_dir_all(&persistence.dir)?;
        let scan = scan_dir(&persistence.dir)?;
        let new_gen = scan.max_generation().map_or(0, |g| g + 1);
        let core = EngineCore::new_persistent(config, factory, persistence.clone(), new_gen)?;
        if let Some(mitigator) = mitigator {
            // Before any decode or replay: recovered jobs must carry
            // policies from the first replayed barrier onward.
            core.set_mitigator(mitigator);
        }
        if let Some(observer) = observer {
            // Likewise before the snapshot installs (its blob restores
            // into this observer) and before the WAL suffix replays
            // (which this observer re-observes live).
            core.set_observer(observer);
        }

        // Newest snapshot that both reads (framing, CRCs) and decodes
        // (every job record through the factory) wins; everything newer
        // is a fallback. `install_snapshot` mutates shard state, so a
        // decode failure must surface *before* installing anything —
        // read + decode errors both just advance to the next candidate.
        let mut fallbacks = 0usize;
        let mut loaded = None;
        for &generation in scan.snapshots.iter().rev() {
            match read_snapshot_data(&snapshot_path(&persistence.dir, generation))
                .and_then(|data| core.install_snapshot(data))
            {
                Ok(counts) => {
                    loaded = Some((generation, counts));
                    break;
                }
                Err(_) => fallbacks += 1,
            }
        }
        let snapshot_generation = loaded.map(|(generation, _)| generation);
        let (resumed_jobs, finalized_jobs, donor_seeds) =
            loaded.map_or((0, 0, 0), |(_, counts)| counts);

        // Replay the WAL trail on top: all segments at or past the loaded
        // snapshot's generation (all of them when starting empty),
        // generation-major — the order the crashed engine applied them.
        // Torn or corrupt tails are crash damage, not errors: the valid
        // prefix replays and the tail is counted.
        let min_generation = snapshot_generation.unwrap_or(0);
        let mut wal_events_replayed = 0;
        let mut wal_truncated_tails = 0;
        for &(generation, shard) in &scan.wals {
            if generation < min_generation {
                continue;
            }
            let (events, tail) = read_wal_segment(&wal_path(&persistence.dir, generation, shard))?;
            if tail != WalTail::Clean {
                wal_truncated_tails += 1;
            }
            wal_events_replayed += core.replay_recovered(events);
        }
        if let Some(persist) = core.persist() {
            persist
                .recovery_fallbacks
                .store(fallbacks, Ordering::Relaxed);
        }

        // Seal the recovery with a fresh snapshot (also rotates the WALs
        // and prunes pre-retention generations), then start serving.
        core.write_snapshot()?;
        let events_seen = core.events_seen();
        let report = RecoverReport {
            snapshot_generation,
            recovery_fallbacks: fallbacks,
            wal_events_replayed,
            wal_truncated_tails,
            resumed_jobs,
            finalized_jobs,
            events_seen,
            donor_seeds,
        };
        Ok((Self::launch(Arc::new(core), &service), report))
    }

    fn launch(core: Arc<EngineCore>, service: &ServiceConfig) -> Self {
        let flush_every = core.persist().and_then(|p| {
            (p.config.fsync == FsyncPolicy::OnIdle).then_some(p.config.flush_interval)
        });
        let service = DrainService::start(Arc::clone(&core), service, flush_every);
        let handle = EngineHandle::new(Arc::clone(&core), BlockMode::Sleep);
        EngineService {
            core,
            handle,
            service: Mutex::new(Some(service)),
            closed: Mutex::new(None),
        }
    }

    /// A cloneable producer handle; make one per producer thread. Under
    /// [`OverloadPolicy::Block`](crate::OverloadPolicy::Block) its
    /// [`push`](EngineHandle::push) is a true blocking send.
    #[must_use]
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Pushes one event from the current thread (see
    /// [`EngineHandle::push`]).
    pub fn push(&self, event: nurd_data::TaskEvent) -> bool {
        self.handle.push(event)
    }

    /// Pushes a batch of events in order; returns how many were accepted.
    pub fn push_all(&self, events: impl IntoIterator<Item = nurd_data::TaskEvent>) -> usize {
        self.handle.push_all(events)
    }

    /// Convenience admission (see [`EngineHandle::admit`]).
    pub fn admit(&self, spec: nurd_data::JobSpec) -> bool {
        self.handle.admit(spec)
    }

    /// Takes the reports of jobs finalized since the last take — safe
    /// while the service is running (see [`EngineHandle::take_finalized`]).
    pub fn take_finalized(&self) -> Vec<JobReport> {
        self.handle.take_finalized()
    }

    /// Live scheduling diagnostics, polled without stopping the service
    /// (see [`EngineStats`]).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.handle.stats()
    }

    /// Installs a mitigation-policy factory (write-once; returns `false`
    /// if one is already installed). Jobs admitted after this call get a
    /// policy at `JobStart`; jobs already live get one at their next
    /// barrier. For the bit-identical-action-log guarantee, attach before
    /// pushing any events — see
    /// [`Engine::attach_mitigator`](crate::Engine::attach_mitigator) for
    /// the contract, and [`EngineService::recover_with_mitigator`] for
    /// the recovery path.
    pub fn attach_mitigator(&self, mitigator: MitigatorFactory) -> bool {
        self.core.set_mitigator(mitigator)
    }

    /// Installs a node-health observer (write-once; returns `false` if
    /// one is already attached). Bit-invisible to predictions, flags,
    /// and action logs — see
    /// [`Engine::attach_observer`](crate::Engine::attach_observer) for
    /// the contract, and [`EngineService::recover_with_observer`] for the
    /// recovery path. Attach before pushing events so the observer sees
    /// every barrier and finalization.
    pub fn attach_observer(&self, observer: Arc<dyn HealthObserver>) -> bool {
        self.core.set_observer(observer)
    }

    /// Where `job` sits in its lifecycle, judging by *drained* state.
    /// In service mode drains run in the background, so a just-pushed
    /// `JobStart` may briefly report `None`; [`EngineService::quiesce`]
    /// first if the test or caller needs the settled answer.
    #[must_use]
    pub fn job_phase(&self, job: u64) -> Option<JobPhase> {
        self.handle.job_phase(job)
    }

    /// Blocks until every event pushed *before this call* has been
    /// applied (ingress empty and no drain in flight). With producers
    /// still pushing concurrently this is a moving target — the method
    /// promises only that the pre-call backlog is gone; it is the
    /// settle-then-observe primitive for monitors and tests.
    pub fn quiesce(&self) {
        loop {
            let epoch = self.core.notifier().epoch();
            let failed = relock(&self.service)
                .as_ref()
                .is_some_and(DrainService::failed);
            assert!(
                !failed,
                "drain service died: a drain worker panicked (see the \
                 coordinator thread's panic output); the backlog will \
                 never settle"
            );
            if self.core.total_backlog() == 0 {
                // Channels are empty; popped-but-unapplied batches are
                // finished by waiting on each shard's lock once.
                self.core.settle_shards();
                if self.core.total_backlog() == 0 {
                    return;
                }
            } else {
                // Progress signal: workers unpark after every batch.
                self.core.notifier().park(epoch);
            }
        }
    }

    /// On a persistent service: writes a snapshot *now* and compacts the
    /// WAL trail behind it (snapshot-then-truncate; see the crash
    /// recovery runbook in `docs/OPERATIONS.md` for cadence guidance).
    /// Safe while producers push and drains drain — each shard is
    /// captured under its lock at its own WAL rotation instant. Returns
    /// the new snapshot generation.
    ///
    /// # Errors
    ///
    /// Fails with the underlying I/O error; the engine keeps running and
    /// the previous snapshot generation remains the recovery target.
    ///
    /// # Panics
    ///
    /// Panics on a non-persistent service — there is nowhere to write.
    pub fn checkpoint(&self) -> std::io::Result<u64> {
        self.core.write_snapshot()
    }

    /// The donor-cache seeds currently held (finalized jobs' predictor
    /// states keyed by [`crate::job_signature`]), signature order. Empty
    /// on a non-persistent service. Storage-only for now: nothing feeds
    /// these back into factories yet (ROADMAP: transfer learning).
    #[must_use]
    pub fn donor_seeds(&self) -> Vec<DonorSeed> {
        self.core.donor_seeds()
    }

    /// Shuts the service down and returns the final report: closes the
    /// ingress (later pushes fail; producers blocked in a send wake with
    /// their push rejected), lets the drain workers run the backlog down
    /// to quiescence, joins them, persists (flushes every WAL and writes
    /// a shutdown snapshot, on a persistent service), finalizes every
    /// still-live job ([`crate::FinalizeReason::EngineFinish`]), and
    /// reports everything not already handed out by
    /// [`EngineService::take_finalized`].
    ///
    /// **Idempotent**: the first call runs the shutdown; every later call
    /// returns a clone of the first call's report — no panic, no hang.
    /// The shutdown snapshot is written *before* jobs are close-finalized,
    /// so the directory holds every live job in its suspended state and a
    /// later [`EngineService::recover`] resumes them mid-stream.
    ///
    /// # Panics
    ///
    /// Re-raises a drain worker's panic payload (the root cause) if one
    /// died while the service ran.
    #[must_use]
    pub fn close(&self) -> EngineReport {
        let mut closed = relock(&self.closed);
        if let Some(report) = closed.as_ref() {
            return report.clone();
        }
        if let Some(mut service) = relock(&self.service).take() {
            if let Some(payload) = service.join_panic() {
                // The workers are joined and the engine is broken: salvage
                // the durable trail (the WAL holds everything accepted up
                // to the poison), then re-raise the *original* payload —
                // the root cause — instead of tripping over a poisoned
                // shard lock inside finish_report with a generic message.
                let _ = self.core.flush_wals();
                drop(service);
                drop(closed);
                resume_unwind(payload);
            }
        }
        if self.core.is_persistent() {
            // Durability before reporting: seal the WALs and write the
            // shutdown snapshot while every job is still in its live,
            // resumable state. Best-effort by design — a failing disk at
            // shutdown must not turn a clean close into a panic, and the
            // flushed WAL already carries everything the snapshot would.
            let _ = self.core.flush_wals();
            let _ = self.core.write_snapshot();
        }
        let report = self.core.finish_report();
        *closed = Some(report.clone());
        report
    }
}

impl Drop for EngineService {
    /// The unclosed-service guard: joins the drain loop (applying any
    /// backlog) and flushes the WALs, so dropping a persistent service
    /// without closing it loses at most the tail past the last fsync —
    /// and an explicit crash simulation (fault injection) still works,
    /// because a budget-exhausted WAL writer is already dead and flushes
    /// nothing. After a normal [`EngineService::close`] this is a no-op.
    fn drop(&mut self) {
        let closed = self
            .closed
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some();
        if closed {
            return;
        }
        // Joining DrainService (its own Drop) applies the backlog and
        // swallows any worker panic payload — Drop must not unwind.
        drop(
            self.service
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        if self.core.is_persistent() {
            let _ = self.core.flush_wals();
        }
    }
}
