//! The write-ahead event log: one segment file per shard per
//! generation, each record one accepted [`TaskEvent`] framed as
//! `[len][crc32][payload]` (see [`nurd_codec::write_frame`]).
//!
//! Appends happen on the drain path *before* the event is applied,
//! under the same shard lock that orders application — so a segment's
//! record order **is** the shard's application order, and replaying a
//! segment through [`Shard::apply_batch`](crate::shard::Shard::apply_batch)
//! reproduces the shard's trajectory exactly. Reading stops at the
//! first torn or checksum-corrupt record: everything before it is the
//! durable prefix, everything after is the crash's unsynced tail.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nurd_codec::{read_frame, write_frame, Checkpointable, Decoder, Encoder, FrameError};
use nurd_data::TaskEvent;

use crate::persist::{FaultInjector, FsyncPolicy, RecoverError, WalWrite};

/// One shard's live WAL segment. Owned by the [`Shard`](crate::shard::Shard)
/// it logs for and therefore only ever touched under that shard's lock.
pub(crate) struct WalWriter {
    out: BufWriter<File>,
    path: PathBuf,
    policy: FsyncPolicy,
    fault: Option<Arc<FaultInjector>>,
    /// Set once the fault injector "crashed" this writer: every later
    /// append (and flush) silently vanishes, as it would after a kill.
    dead: bool,
    /// Buffered bytes not yet fsynced (skips no-op sync calls).
    dirty: bool,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .finish()
    }
}

impl WalWriter {
    pub(crate) fn create(
        path: PathBuf,
        policy: FsyncPolicy,
        fault: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<Self> {
        let file = File::create(&path)?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            path,
            policy,
            fault,
            dead: false,
            dirty: false,
        })
    }

    /// Appends one event record. Under [`FsyncPolicy::Always`] the
    /// record is flushed and fsynced before this returns.
    pub(crate) fn append(&mut self, event: &TaskEvent) -> std::io::Result<()> {
        if self.dead {
            return Ok(());
        }
        let mut enc = Encoder::new();
        event.encode(&mut enc);
        match self.fault.as_ref().map_or(WalWrite::Full, |f| f.admit()) {
            WalWrite::Full => {
                write_frame(&mut self.out, enc.as_slice())?;
                self.dirty = true;
            }
            WalWrite::Torn => {
                // Half a frame, then silence — the shape a crash mid-write
                // leaves. Flush it so the torn bytes actually land.
                let mut frame = Vec::new();
                write_frame(&mut frame, enc.as_slice()).expect("Vec write is infallible");
                self.out.write_all(&frame[..frame.len() / 2])?;
                self.out.flush()?;
                self.dead = true;
            }
            WalWrite::Dropped => {
                self.dead = true;
            }
        }
        if self.policy == FsyncPolicy::Always {
            self.flush_and_sync()?;
        }
        Ok(())
    }

    /// Pushes buffered records to the OS and fsyncs the segment.
    pub(crate) fn flush_and_sync(&mut self) -> std::io::Result<()> {
        if self.dead || !self.dirty {
            return Ok(());
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.dirty = false;
        Ok(())
    }

    /// Seals this segment (flush + fsync) and starts a fresh one at
    /// `path` — the WAL half of snapshot rotation, called under the
    /// shard lock so no append can slip between the old and new files.
    pub(crate) fn rotate(&mut self, path: PathBuf) -> std::io::Result<()> {
        self.flush_and_sync()?;
        let file = File::create(&path)?;
        self.out = BufWriter::new(file);
        self.path = path;
        self.dirty = false;
        Ok(())
    }
}

/// How a WAL segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalTail {
    /// Clean end of file at a record boundary.
    Clean,
    /// The file ended mid-record (crash between a record's first and
    /// last byte); the valid prefix was returned.
    Torn,
    /// A record failed its checksum; the valid prefix was returned.
    Corrupt,
}

/// Reads a segment's durable prefix: every record up to the first torn
/// or corrupt one. A record that passes its CRC but fails to decode as
/// a [`TaskEvent`] is format drift, not crash damage — that surfaces as
/// a typed [`RecoverError::Codec`] instead of silent truncation.
pub(crate) fn read_wal_segment(path: &Path) -> Result<(Vec<TaskEvent>, WalTail), RecoverError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => {
                let mut dec = Decoder::new(&payload);
                events.push(TaskEvent::decode(&mut dec)?);
            }
            Ok(None) => return Ok((events, WalTail::Clean)),
            Err(FrameError::Torn) => return Ok((events, WalTail::Torn)),
            Err(FrameError::Corrupt) => return Ok((events, WalTail::Corrupt)),
            Err(FrameError::Io(e)) => return Err(RecoverError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(job: u64, ordinal: usize) -> TaskEvent {
        TaskEvent::Progress {
            job,
            task: 0,
            ordinal,
            time: ordinal as f64,
            features: vec![0.5, 1.5],
        }
    }

    #[test]
    fn segment_round_trips_and_reports_a_clean_tail() {
        let dir = std::env::temp_dir().join("nurd-wal-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-0-0.log");
        let mut wal = WalWriter::create(path.clone(), FsyncPolicy::Never, None).unwrap();
        let written: Vec<TaskEvent> = (0..5).map(|i| event(7, i)).collect();
        for e in &written {
            wal.append(e).unwrap();
        }
        wal.flush_and_sync().unwrap();
        let (read, tail) = read_wal_segment(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(read, written);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_crash_keeps_exactly_the_budgeted_prefix() {
        let dir = std::env::temp_dir().join("nurd-wal-test-budget");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-0-0.log");
        let fault = FaultInjector::crash_after_wal_records(3);
        let mut wal = WalWriter::create(path.clone(), FsyncPolicy::Never, Some(fault)).unwrap();
        for i in 0..10 {
            wal.append(&event(7, i)).unwrap();
        }
        drop(wal); // BufWriter flushes what it was allowed to hold
        let (read, tail) = read_wal_segment(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(read, (0..3).map(|i| event(7, i)).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_the_prefix_survives() {
        let dir = std::env::temp_dir().join("nurd-wal-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-0-0.log");
        let fault = FaultInjector::crash_after_wal_records(2).with_torn_tail();
        let mut wal = WalWriter::create(path.clone(), FsyncPolicy::Never, Some(fault)).unwrap();
        for i in 0..10 {
            wal.append(&event(7, i)).unwrap();
        }
        drop(wal);
        let (read, tail) = read_wal_segment(&path).unwrap();
        assert_eq!(tail, WalTail::Torn);
        assert_eq!(read, (0..2).map(|i| event(7, i)).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }
}
