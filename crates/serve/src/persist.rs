//! Persistence vocabulary for the crash-safe engine: durability tuning,
//! fault injection, typed recovery errors, and the on-disk directory
//! layout shared by the snapshot ([`crate::snapshot`]) and write-ahead
//! log ([`crate::wal`]) machinery.
//!
//! On-disk layout (one directory per engine):
//!
//! ```text
//! <dir>/snap-<G>.bin      versioned snapshot, generation G
//! <dir>/wal-<G>-<S>.log   WAL segment for shard S, generation G
//! ```
//!
//! A snapshot at generation `G` captures every event the engine applied
//! while logging to WAL generations `< G`; the WALs rotate to `G` at the
//! same instant (under every shard lock), so recovery is exactly: load
//! the newest *valid* `snap-G.bin`, then replay every `wal-G'-S.log`
//! with `G' ≥ G` in ascending generation order. `docs/OPERATIONS.md`
//! has the operator runbook.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nurd_codec::{CodecError, FrameError};
use nurd_data::JobSpec;

/// When WAL appends reach the disk (the durability/throughput dial; see
/// the crash-recovery runbook in `docs/OPERATIONS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Flush + fsync after every drained batch. Maximum durability: an
    /// accepted-and-drained event survives any crash. Pays one fsync per
    /// batch on the drain path.
    Always,
    /// A background flush worker fsyncs every
    /// [`PersistenceConfig::flush_interval`] (and at shutdown). A crash
    /// loses at most the last interval's tail — the default trade.
    #[default]
    OnIdle,
    /// Flush + fsync only at snapshots,
    /// [`EngineService::close`](crate::EngineService::close), and the
    /// `Drop` guard. A hard kill can lose everything since the last
    /// snapshot.
    Never,
}

/// Where and how the engine persists (see the module docs for the
/// directory layout). Passed to
/// [`EngineService::start_persistent`](crate::EngineService::start_persistent)
/// and [`EngineService::recover`](crate::EngineService::recover).
#[derive(Debug, Clone)]
pub struct PersistenceConfig {
    /// Directory holding snapshots and WAL segments (created if absent).
    pub dir: PathBuf,
    /// Durability of WAL appends.
    pub fsync: FsyncPolicy,
    /// Snapshot generations kept on disk (clamped to ≥ 2 so recovery can
    /// always fall back past a corrupted newest snapshot; WAL segments
    /// older than the oldest retained snapshot are pruned with it).
    pub retain_generations: usize,
    /// Cadence of the background flush worker under
    /// [`FsyncPolicy::OnIdle`] — the bound on how much a hard kill can
    /// lose.
    pub flush_interval: Duration,
    /// Fault injection for crash tests (`None` in production).
    pub fault: Option<Arc<FaultInjector>>,
}

impl PersistenceConfig {
    /// Defaults rooted at `dir`: [`FsyncPolicy::OnIdle`] with a 2 ms
    /// flush cadence, two retained snapshot generations, no faults.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            retain_generations: 2,
            flush_interval: Duration::from_millis(2),
            fault: None,
        }
    }
}

/// Deterministic crash/fault injection for the recovery property tests:
/// a budget of WAL records that are allowed to reach the operating
/// system, after which every write is silently discarded — exactly what
/// a crash does to the unsynced tail. With
/// [`FaultInjector::with_torn_tail`],
/// the first record past the budget is half-written instead of dropped,
/// leaving the torn frame a real crash mid-`write` leaves.
///
/// Dropping the [`EngineService`](crate::EngineService) *without*
/// closing it then simulates the kill; the WAL holds precisely the
/// budgeted prefix, and recovery must reconstruct exactly that much.
#[derive(Debug)]
pub struct FaultInjector {
    /// Records still allowed to be written (negative = exhausted).
    budget: AtomicI64,
    /// Whether exhaustion tears the next record instead of dropping it.
    torn: AtomicBool,
}

/// What the injector lets one WAL append do.
pub(crate) enum WalWrite {
    /// Write the whole record.
    Full,
    /// Write roughly half the record's bytes, then go dead.
    Torn,
    /// Write nothing (the crash already "happened").
    Dropped,
}

impl FaultInjector {
    /// An injector that crashes the WAL after `records` appends have
    /// reached it (fleet-wide, across all shards).
    #[must_use]
    pub fn crash_after_wal_records(records: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            budget: AtomicI64::new(i64::try_from(records).unwrap_or(i64::MAX)),
            torn: AtomicBool::new(false),
        })
    }

    /// Tear the first record past the budget (a half-written frame)
    /// instead of dropping it cleanly.
    #[must_use]
    pub fn with_torn_tail(self: Arc<Self>) -> Arc<Self> {
        self.torn.store(true, Ordering::Relaxed);
        self
    }

    /// Records the injector has allowed so far never exceed the
    /// configured budget; this is how many remain (for test assertions).
    #[must_use]
    pub fn remaining(&self) -> i64 {
        self.budget.load(Ordering::Relaxed).max(0)
    }

    pub(crate) fn admit(&self) -> WalWrite {
        let before = self.budget.fetch_sub(1, Ordering::Relaxed);
        if before > 0 {
            WalWrite::Full
        } else if before == 0 && self.torn.load(Ordering::Relaxed) {
            WalWrite::Torn
        } else {
            WalWrite::Dropped
        }
    }
}

/// Why a recovery attempt (or a [`read_snapshot`](crate::read_snapshot))
/// failed. Every corrupt-artifact shape maps to a typed variant — never
/// a panic, never a silent partial load.
#[derive(Debug)]
pub enum RecoverError {
    /// The filesystem failed.
    Io(std::io::Error),
    /// A snapshot file does not begin with the snapshot magic — it is
    /// not a snapshot at all (or its header was overwritten).
    WrongMagic,
    /// The snapshot declares a format version this build does not know
    /// (carries the declared version).
    UnsupportedVersion(u32),
    /// A snapshot ended mid-record (torn write / truncation).
    Truncated,
    /// A snapshot record's CRC32 does not match its payload (bit flip or
    /// overwrite, not a clean truncation).
    ChecksumMismatch,
    /// The snapshot payload passed its checksum but did not decode —
    /// format drift or an internal bug, surfaced rather than half-loaded.
    Codec(CodecError),
    /// A job's persisted predictor blob was rejected by the freshly
    /// built predictor's `restore_state` (carries the job id).
    PredictorRestore(u64),
    /// The snapshot's health-observer blob was rejected by the attached
    /// observer's `restore_state`.
    ObserverRestore,
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery I/O error: {e}"),
            RecoverError::WrongMagic => write!(f, "snapshot has wrong magic bytes"),
            RecoverError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} is newer than this build")
            }
            RecoverError::Truncated => write!(f, "snapshot is truncated (torn write)"),
            RecoverError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            RecoverError::Codec(e) => write!(f, "snapshot payload failed to decode: {e}"),
            RecoverError::PredictorRestore(job) => {
                write!(f, "predictor for job {job} rejected its persisted state")
            }
            RecoverError::ObserverRestore => {
                write!(f, "health observer rejected its persisted state")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<CodecError> for RecoverError {
    fn from(e: CodecError) -> Self {
        RecoverError::Codec(e)
    }
}

impl From<FrameError> for RecoverError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => RecoverError::Io(e),
            FrameError::Torn => RecoverError::Truncated,
            FrameError::Corrupt => RecoverError::ChecksumMismatch,
        }
    }
}

/// What [`EngineService::recover`](crate::EngineService::recover)
/// reconstructed — the operator's receipt for a restart.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// Generation of the snapshot actually loaded (`None` = no valid
    /// snapshot existed; recovery started empty and replayed every WAL).
    pub snapshot_generation: Option<u64>,
    /// Snapshot files that had to be skipped as invalid before a valid
    /// one (or emptiness) was reached — also in
    /// [`EngineStats::recovery_fallbacks`](crate::EngineStats::recovery_fallbacks).
    pub recovery_fallbacks: usize,
    /// Events replayed from WAL segments on top of the snapshot.
    pub wal_events_replayed: usize,
    /// WAL segments whose tail was cut short by a torn or
    /// checksum-corrupt record (the valid prefix was still replayed).
    pub wal_truncated_tails: usize,
    /// Live jobs resumed mid-stream (predictors restored or re-derived).
    pub resumed_jobs: usize,
    /// Finalized-job reports carried over (not yet taken before the
    /// crash).
    pub finalized_jobs: usize,
    /// Per-job count of *durable* events — how many of each job's stream
    /// survived, so a producer can resume pushing from exactly the next
    /// event (see `examples/recovery_smoke.rs`).
    pub events_seen: BTreeMap<u64, u64>,
    /// Donor-cache seeds carried over (see [`DonorSeed`]).
    pub donor_seeds: usize,
}

/// A finalized job's predictor state, kept in the snapshot keyed by
/// [`job_signature`] — the storage half of the ROADMAP's transfer-
/// learning donor cache. Nothing reads these back into factories yet;
/// they ride the snapshot so a later PR can serve warm donors from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct DonorSeed {
    /// [`job_signature`] of the finalized job's spec.
    pub signature: u64,
    /// The finalized job's id.
    pub job: u64,
    /// [`OnlinePredictor::name`](nurd_data::OnlinePredictor::name) of
    /// the predictor that produced the state.
    pub predictor: String,
    /// The predictor's `snapshot_state` blob at finalization.
    pub state: Vec<u8>,
}

impl nurd_codec::Checkpointable for DonorSeed {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_u64(self.signature);
        enc.put_u64(self.job);
        enc.put_str(&self.predictor);
        enc.put_bytes(&self.state);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, CodecError> {
        Ok(DonorSeed {
            signature: dec.take_u64()?,
            job: dec.take_u64()?,
            predictor: dec.take_str()?.to_owned(),
            state: dec.take_bytes()?.to_vec(),
        })
    }
}

/// A shape signature for donor matching: jobs with the same task count,
/// feature width, checkpoint count, and threshold hash alike (job id
/// deliberately excluded — the whole point is matching *across* jobs).
#[must_use]
pub fn job_signature(spec: &JobSpec) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for word in [
        spec.task_count as u64,
        spec.feature_dim as u64,
        spec.checkpoints as u64,
        spec.threshold.to_bits(),
    ] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// `<dir>/snap-<gen>.bin`
pub(crate) fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.bin"))
}

/// `<dir>/wal-<gen>-<shard>.log`
pub(crate) fn wal_path(dir: &Path, generation: u64, shard: usize) -> PathBuf {
    dir.join(format!("wal-{generation}-{shard}.log"))
}

/// Everything persistence-shaped found in an engine directory.
#[derive(Debug, Default)]
pub(crate) struct DirScan {
    /// Snapshot generations, ascending.
    pub(crate) snapshots: Vec<u64>,
    /// WAL segments as `(generation, shard)`, generation-major ascending.
    pub(crate) wals: Vec<(u64, usize)>,
}

impl DirScan {
    /// The highest generation any artifact mentions.
    pub(crate) fn max_generation(&self) -> Option<u64> {
        self.snapshots
            .last()
            .copied()
            .into_iter()
            .chain(self.wals.iter().map(|&(g, _)| g))
            .max()
    }
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

fn parse_wal_name(name: &str) -> Option<(u64, usize)> {
    let body = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (generation, shard) = body.split_once('-')?;
    Some((generation.parse().ok()?, shard.parse().ok()?))
}

pub(crate) fn scan_dir(dir: &Path) -> std::io::Result<DirScan> {
    let mut scan = DirScan::default();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if let Some(generation) = parse_snapshot_name(&name) {
            scan.snapshots.push(generation);
        } else if let Some(segment) = parse_wal_name(&name) {
            scan.wals.push(segment);
        }
    }
    scan.snapshots.sort_unstable();
    scan.wals.sort_unstable();
    Ok(scan)
}

/// Deletes snapshots beyond the newest `retain` generations, plus every
/// WAL segment older than the oldest snapshot kept. Nothing is pruned
/// while fewer than two snapshots exist: the fallback target would then
/// be the *empty* state, which needs every WAL generation to replay.
pub(crate) fn prune_dir(dir: &Path, retain: usize) -> std::io::Result<()> {
    let retain = retain.max(2);
    let scan = scan_dir(dir)?;
    if scan.snapshots.len() < 2 {
        return Ok(());
    }
    let keep_from = scan.snapshots[scan.snapshots.len().saturating_sub(retain)];
    for &generation in &scan.snapshots {
        if generation < keep_from {
            std::fs::remove_file(snapshot_path(dir, generation))?;
        }
    }
    for &(generation, shard) in &scan.wals {
        if generation < keep_from {
            std::fs::remove_file(wal_path(dir, generation, shard))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_round_trip_through_the_scanner() {
        assert_eq!(parse_snapshot_name("snap-17.bin"), Some(17));
        assert_eq!(parse_snapshot_name("snap-x.bin"), None);
        assert_eq!(parse_snapshot_name("wal-1-2.log"), None);
        assert_eq!(parse_wal_name("wal-3-11.log"), Some((3, 11)));
        assert_eq!(parse_wal_name("wal-3.log"), None);
        assert_eq!(parse_wal_name("snap-3.bin"), None);
    }

    #[test]
    fn job_signature_ignores_job_id_but_not_shape() {
        let spec = |job, tasks| JobSpec {
            job,
            threshold: 10.0,
            task_count: tasks,
            feature_dim: 3,
            checkpoints: 5,
        };
        assert_eq!(job_signature(&spec(1, 50)), job_signature(&spec(2, 50)));
        assert_ne!(job_signature(&spec(1, 50)), job_signature(&spec(1, 51)));
    }

    #[test]
    fn fault_injector_budget_admits_then_drops() {
        let fault = FaultInjector::crash_after_wal_records(2);
        assert!(matches!(fault.admit(), WalWrite::Full));
        assert!(matches!(fault.admit(), WalWrite::Full));
        assert!(matches!(fault.admit(), WalWrite::Dropped));
        assert!(matches!(fault.admit(), WalWrite::Dropped));
        let torn = FaultInjector::crash_after_wal_records(1).with_torn_tail();
        assert!(matches!(torn.admit(), WalWrite::Full));
        assert!(matches!(torn.admit(), WalWrite::Torn));
        assert!(matches!(torn.admit(), WalWrite::Dropped));
    }
}
