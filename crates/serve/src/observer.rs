//! The engine's node-health observation hook.
//!
//! A [`HealthObserver`] is a fleet-level *listener* attached to a running
//! engine (write-once, like the mitigator factory): shard drains feed it
//! every finalized job's report — together with the job's node placement
//! and per-task straggler truth — and, when the engine is scoring, every
//! scored barrier's per-task scores. The observer is **bit-invisible to
//! predictions**: it only reads what the engine already computed (the
//! predictor contract makes the scored path flag-identical to the plain
//! one), so attaching an observer never changes a report, a flag, or an
//! action log.
//!
//! Observers are shared (`Arc`) and called under shard locks from
//! whichever worker drains, so implementations must be `Send + Sync` and
//! cheap per call; interior mutability (a mutex over keyed maps) is the
//! expected shape. Because different jobs' observations can interleave in
//! any order across shards, an observer that wants deterministic state
//! must make its updates commutative across jobs (e.g. keyed,
//! order-independent inserts) — `nurd-health`'s aggregator is the
//! reference implementation.
//!
//! Persistence rides the snapshot like the donor cache: the engine calls
//! [`HealthObserver::snapshot_state`] when writing a snapshot and
//! [`HealthObserver::restore_state`] when installing one, so a recovered
//! observer resumes with exactly the state it had at the snapshot point
//! (the replayed WAL suffix is then re-observed live).

use nurd_data::TaskScore;

use crate::engine::JobReport;

/// A fleet-level listener for finalized jobs and scored barriers — the
/// engine-side contract `nurd-health`'s aggregator implements. Attach
/// one via [`Engine::attach_observer`](crate::Engine::attach_observer) /
/// [`EngineService::attach_observer`](crate::EngineService::attach_observer),
/// or at recovery via
/// [`EngineService::recover_with_observer`](crate::EngineService::recover_with_observer).
pub trait HealthObserver: Send + Sync {
    /// Called once per *scored* barrier of every job, with the job's node
    /// placement (if a [`nurd_data::TaskEvent::Placed`] event arrived)
    /// and the barrier's per-task scores. Default: ignore barriers and
    /// learn from finalizations only.
    fn observe_barrier(
        &self,
        _job: u64,
        _ordinal: usize,
        _time: f64,
        _nodes: Option<&[u32]>,
        _scores: &[TaskScore],
    ) {
    }

    /// Called once when a job finalizes, before its report is published:
    /// `nodes[t]` is task `t`'s node (when placement is known) and
    /// `straggled[t]` is the task's ground truth against the job's
    /// threshold (a task whose completion never arrived counts as a
    /// straggler, exactly as in the report's confusion accounting).
    fn observe_finalized(&self, report: &JobReport, nodes: Option<&[u32]>, straggled: &[bool]);

    /// Serializes the observer's state for a snapshot (empty = nothing
    /// to persist, the default).
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`HealthObserver::snapshot_state`];
    /// `false` rejects the blob (surfaced as a typed
    /// [`RecoverError::ObserverRestore`](crate::RecoverError::ObserverRestore)).
    fn restore_state(&self, _blob: &[u8]) -> bool {
        true
    }
}
