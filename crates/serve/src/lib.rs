//! `nurd-serve` — a **concurrent** streaming multi-job straggler-prediction
//! engine on the shared `nurd-runtime` substrate.
//!
//! The paper's Algorithm 1 (and `nurd_sim::replay_job`) is one job,
//! replayed checkpoint-by-checkpoint on one thread. The ROADMAP's north
//! star is a *service*: many concurrent jobs streaming task events from
//! many producer threads under heavy traffic, arriving and departing at
//! any time. This crate is that layer, in three pieces:
//!
//! * a crate-private **`EngineCore`** — per-shard
//!   [`nurd_runtime::Channel`] MPSC ingress queues, per-shard job state
//!   behind per-shard locks, and live counters as atomics;
//! * a cloneable **[`EngineHandle`]** whose [`EngineHandle::push`] takes
//!   `&self` — producers live on any thread, and under the lossless
//!   [`OverloadPolicy::Block`] a push to a full shard is a *true
//!   blocking send* (the producer sleeps until a drain makes room);
//! * an **[`EngineService`]** that runs the drain loop as a background
//!   service (a pool of drain workers parking on a
//!   [`nurd_runtime::Notifier`] when idle), with
//!   [`EngineService::take_finalized`] as the mid-stream report channel
//!   and [`EngineService::close`] as drain-to-quiescence shutdown. The
//!   caller-driven [`Engine`] (push → [`Engine::drain_sync`] → observe)
//!   remains as the single-threaded shim over the same core.
//!
//! Everything PR 4 established rides along unchanged: **mid-stream
//! admission** ([`nurd_data::TaskEvent::JobStart`] carries the
//! [`nurd_data::JobSpec`]; the [`PredictorFactory`] builds the predictor
//! on the spot — no up-front registry), **per-job finalization**
//! (`JobEnd` / last barrier / all-tasks-finished ⇒ [`JobReport`], state
//! dropped, memory bounded to *live* jobs), **back-pressure**
//! ([`EngineConfig::queue_capacity`] + [`OverloadPolicy`], losses
//! counted in [`OverloadCounters`]), and **adaptive shard balancing**
//! (new — [`BalanceConfig`]: a backlogged shard's oversized jobs get
//! within-job parallelism via [`nurd_data::OnlinePredictor::set_parallelism`],
//! attacking the one-giant-job skew that shard counts cannot).
//!
//! New in this layer: **crash safety**. A service started with
//! [`EngineService::start_persistent`] write-ahead-logs every drained
//! event (per shard, under the same lock that orders application) and
//! writes versioned, CRC-framed snapshots
//! ([`EngineService::checkpoint`] and at [`EngineService::close`]);
//! [`EngineService::recover`] rebuilds a running service from the
//! directory — newest valid snapshot plus the WAL tail — with per-job
//! state bit-for-bit equal to a never-crashed run (`tests/recovery.rs`
//! proves it under random fault injection: crash-before-fsync, torn
//! records, bit flips, corrupted snapshots). [`PersistenceConfig`] holds
//! the durability knobs ([`FsyncPolicy`]), [`FaultInjector`] the test
//! harness, and every corrupt artifact surfaces as a typed
//! [`RecoverError`] — never a panic, never a silent partial load.
//!
//! `docs/OPERATIONS.md` at the repository root is the operator's guide
//! (thread topology, worker sizing, shutdown semantics, counter triage,
//! and the crash recovery runbook).
//!
//! # Why determinism holds
//!
//! A job's entire mutable state — predictor, task features, flags —
//! lives in exactly one shard, chosen by hashing the job id. Per-shard
//! ingress channels are FIFO, and a drain pops and applies under that
//! shard's lock, so per-shard application order **is** channel order no
//! matter which worker (or how many workers, or which producer thread
//! under the shim's inline-drain) does the draining. Admission and
//! finalization ride *in* the stream as ordinary events, and no state is
//! shared between jobs. Parallelism — shard count, drain-worker count,
//! producer count, within-job balancing threads — only decides *which
//! thread* applies a job's events or fits its models, never their order
//! or result, so every job's trajectory equals its sequential replay and
//! the merged, id-sorted report is invariant. The one exception is
//! deliberate: a lossy [`OverloadPolicy`] under saturation drops events,
//! which the overload counters make visible. The property tests pin all
//! of this: `tests/determinism.rs` across shard counts {1, 2, 8}, random
//! interleavings, drain batchings, and staggered mid-stream
//! arrivals/departures; `tests/service.rs` with *real producer threads*
//! against the background drain service on a saturated, blocking engine.
//!
//! # Example
//!
//! ```
//! use nurd_serve::{EngineConfig, EngineService, ServiceConfig};
//! # use nurd_data::{Checkpoint, OnlinePredictor};
//! # struct Never;
//! # impl OnlinePredictor for Never {
//! #     fn name(&self) -> &str { "NEVER" }
//! #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
//! # }
//!
//! // Generate a 3-job fleet whose jobs arrive and depart mid-stream,
//! // and serve it through a 2-shard service from 3 producer threads.
//! let cfg = nurd_trace::SuiteConfig::new(nurd_trace::TraceStyle::Google)
//!     .with_jobs(3).with_task_range(20, 30).with_checkpoints(6).with_seed(1);
//! let jobs = nurd_trace::generate_suite(&cfg);
//!
//! let service = EngineService::start(
//!     EngineConfig { shards: 2, ..EngineConfig::default() },
//!     ServiceConfig::default(),
//!     Box::new(|_| Box::new(Never)),
//! );
//! let producers: Vec<_> = jobs
//!     .iter()
//!     .map(|job| {
//!         let handle = service.handle();
//!         let stream = nurd_data::job_stream(job, 0.9);
//!         std::thread::spawn(move || handle.push_all(stream))
//!     })
//!     .collect();
//! for p in producers {
//!     p.join().unwrap();
//! }
//! let report = service.close();
//! assert_eq!(report.jobs.len(), 3);
//! ```

#![warn(missing_docs)]

mod engine;
mod lifecycle;
mod observer;
mod persist;
mod service;
mod shard;
mod snapshot;
mod wal;

pub use engine::{
    BalanceConfig, Engine, EngineConfig, EngineHandle, EngineReport, EngineStats, JobReport,
    MitigatorFactory, PredictorFactory,
};
pub use lifecycle::{FinalizeReason, JobPhase, OverloadCounters, OverloadPolicy};
pub use observer::HealthObserver;
pub use persist::{
    job_signature, DonorSeed, FaultInjector, FsyncPolicy, PersistenceConfig, RecoverError,
    RecoverReport,
};
pub use service::{EngineService, ServiceConfig};
pub use snapshot::{read_snapshot, SnapshotStats};
