//! `nurd-serve` — a streaming multi-job straggler-prediction engine on
//! the shared `nurd-runtime` work-stealing pool.
//!
//! The paper's Algorithm 1 (and `nurd_sim::replay_job`) is one job,
//! replayed checkpoint-by-checkpoint on one thread. The ROADMAP's north
//! star is a *service*: many concurrent jobs streaming task events under
//! heavy traffic, arriving and departing at any time. This crate is that
//! layer:
//!
//! * a [`nurd_data::TaskEvent`] stream (`JobStart` / `Submitted` /
//!   `Progress` / `Finished` / `Barrier` / `JobEnd`) multiplexed across
//!   jobs — build one from traces with
//!   `nurd_trace::staggered_fleet_events`;
//! * **mid-stream admission**: a job is admitted when a drain first sees
//!   its [`TaskEvent::JobStart`](nurd_data::TaskEvent::JobStart), which
//!   carries the [`nurd_data::JobSpec`]; the [`PredictorFactory`] builds
//!   its predictor on the spot — there is no up-front registry;
//! * **per-job finalization**: an explicit
//!   [`TaskEvent::JobEnd`](nurd_data::TaskEvent::JobEnd), a job's last
//!   barrier, or all-tasks-finished detection emits its [`JobReport`]
//!   (readable mid-stream via [`Engine::take_finalized`]) and drops the
//!   job's entire state, bounding resident memory to *live* jobs;
//! * **back-pressure**: per-shard ingress queues can be bounded
//!   ([`EngineConfig::queue_capacity`]) with a configurable
//!   [`OverloadPolicy`] (block / shed-oldest / reject-new), accounted in
//!   [`OverloadCounters`];
//! * a **sharded dispatcher** ([`Engine`]) hashing job ids to shards,
//!   each shard drained by its own pool task, with **batched scoring at
//!   checkpoint boundaries** under the replay protocol's warmup and
//!   revelation rules;
//! * per-job reports whose [`nurd_sim::ReplayOutcome`] is **bit-for-bit
//!   identical to sequential replay**, regardless of shard count, drain
//!   batching, cross-job event interleaving, or when the job arrived and
//!   departed.
//!
//! `docs/OPERATIONS.md` at the repository root is the operator's guide
//! to running this engine (lifecycle state machine, shard sizing,
//! overload policies, counter triage).
//!
//! # Why determinism holds
//!
//! A job's entire mutable state — predictor, task features, flags —
//! lives in exactly one shard, chosen by hashing the job id. Events of
//! one job are applied in stream order (shard queues are FIFO and the
//! stream contract keeps per-job order), admission and finalization ride
//! *in* that stream as ordinary events, and no state is shared between
//! jobs. Parallelism only decides *which thread* applies a job's events,
//! never their order, so every job's trajectory equals its sequential
//! replay and the merged, id-sorted report is invariant. The one
//! exception is deliberate: a lossy [`OverloadPolicy`] under saturation
//! drops events, which the overload counters make visible. The property
//! test in `tests/determinism.rs` pins the invariance across shard
//! counts {1, 2, 8}, random interleavings, drain batchings, and
//! staggered mid-stream arrivals/departures.
//!
//! # Example
//!
//! ```
//! use nurd_runtime::ThreadPool;
//! use nurd_serve::{Engine, EngineConfig};
//! # use nurd_data::{Checkpoint, OnlinePredictor};
//! # struct Never;
//! # impl OnlinePredictor for Never {
//! #     fn name(&self) -> &str { "NEVER" }
//! #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
//! # }
//!
//! // Generate a 3-job fleet whose jobs arrive and depart mid-stream,
//! // and serve it through a 2-shard engine. Admission metadata travels
//! // in the stream's JobStart events.
//! let cfg = nurd_trace::SuiteConfig::new(nurd_trace::TraceStyle::Google)
//!     .with_jobs(3).with_task_range(20, 30).with_checkpoints(6).with_seed(1);
//! let jobs = nurd_trace::generate_suite(&cfg);
//! let events = nurd_trace::staggered_fleet_events(&jobs, 0.9, 50.0, 7);
//!
//! let pool = ThreadPool::new(2);
//! let mut engine = Engine::new(
//!     EngineConfig { shards: 2, ..EngineConfig::default() },
//!     Box::new(|_| Box::new(Never)),
//! );
//! engine.push_all(events);
//! let report = engine.finish(&pool);
//! assert_eq!(report.jobs.len(), 3);
//! ```

#![warn(missing_docs)]

mod engine;
mod lifecycle;
mod shard;

pub use engine::{Engine, EngineConfig, EngineReport, EngineStats, JobReport, PredictorFactory};
pub use lifecycle::{FinalizeReason, JobPhase, OverloadCounters, OverloadPolicy};
