//! `nurd-serve` — a multi-job online straggler-prediction engine on the
//! shared `nurd-runtime` work-stealing pool.
//!
//! The paper's Algorithm 1 (and `nurd_sim::replay_job`) is one job,
//! replayed checkpoint-by-checkpoint on one thread. The ROADMAP's north
//! star is a *service*: many concurrent jobs streaming task events under
//! heavy traffic. This crate is that layer:
//!
//! * a [`nurd_data::TaskEvent`] stream (`Submitted` / `Progress` /
//!   `Finished`, with per-checkpoint `Barrier`s) multiplexed across jobs
//!   — build one from traces with `nurd_trace::fleet_events`;
//! * per-job predictor state ([`nurd_data::JobSpec`] + any
//!   [`nurd_data::OnlinePredictor`], e.g. a warm-policy `NurdPredictor`
//!   whose `WarmRefitState` persists across the job's checkpoints);
//! * a **sharded dispatcher** ([`Engine`]) hashing job ids to shards,
//!   each shard drained by its own pool task;
//! * **batched scoring at checkpoint boundaries**: a job's running tasks
//!   are scored when its `Barrier` event closes a checkpoint, under the
//!   replay protocol's warmup and revelation rules;
//! * an [`EngineReport`] whose per-job [`nurd_sim::ReplayOutcome`] is
//!   **bit-for-bit identical to sequential replay**, regardless of shard
//!   count, drain batching, or cross-job event interleaving.
//!
//! # Why determinism holds
//!
//! A job's entire mutable state — predictor, task features, flags —
//! lives in exactly one shard, chosen by hashing the job id. Events of
//! one job are applied in stream order (shard queues are FIFO and the
//! stream contract keeps per-job order), and no state is shared between
//! jobs. Parallelism only decides *which thread* applies a job's events,
//! never their order, so every job's trajectory equals its sequential
//! replay and the merged, id-sorted report is invariant. The property
//! test in `tests/determinism.rs` pins this across shard counts
//! {1, 2, 8}, random interleavings, and drain batchings.
//!
//! # Example
//!
//! ```
//! use nurd_runtime::ThreadPool;
//! use nurd_serve::{Engine, EngineConfig};
//! # use nurd_data::{Checkpoint, OnlinePredictor};
//! # struct Never;
//! # impl OnlinePredictor for Never {
//! #     fn name(&self) -> &str { "NEVER" }
//! #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
//! # }
//!
//! // Generate a 3-job fleet and replay it through a 2-shard engine.
//! let cfg = nurd_trace::SuiteConfig::new(nurd_trace::TraceStyle::Google)
//!     .with_jobs(3).with_task_range(20, 30).with_checkpoints(6).with_seed(1);
//! let jobs = nurd_trace::generate_suite(&cfg);
//! let (specs, events) = nurd_trace::fleet_events(&jobs, 0.9);
//!
//! let pool = ThreadPool::new(2);
//! let mut engine = Engine::new(
//!     EngineConfig { shards: 2, ..EngineConfig::default() },
//!     Box::new(|_| Box::new(Never)),
//! );
//! for spec in specs {
//!     engine.admit(spec);
//! }
//! engine.push_all(events);
//! let report = engine.finish(&pool);
//! assert_eq!(report.jobs.len(), 3);
//! ```

mod engine;
mod shard;

pub use engine::{Engine, EngineConfig, EngineReport, EngineStats, JobReport, PredictorFactory};
