//! Crash-recovery acceptance tests: **restart equals uninterrupted**.
//!
//! The centerpiece property crashes a persistent 3-producer service at a
//! random fault point (WAL-record budget, optionally with a torn tail
//! and a corrupted newest snapshot), recovers from the directory, lets
//! the producers resume each job's stream from
//! [`RecoverReport::events_seen`], and asserts every job's final
//! [`nurd_sim::ReplayOutcome`] is **bit-for-bit** the never-crashed
//! sequential `replay_job` result — at shard counts {1, 2, 8}, with zero
//! accepted-event loss up to the last durable record.
//!
//! Around it: history-mode recovery (predictors without
//! `snapshot_state`), typed corrupt-artifact rejection with fallback to
//! the previous valid snapshot, idempotent double-close, the `Drop`
//! guard's WAL flush, and donor-seed persistence.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
use nurd_serve::{
    job_signature, read_snapshot, EngineConfig, EngineService, FaultInjector, FsyncPolicy,
    OverloadPolicy, PersistenceConfig, PredictorFactory, RecoverError, ServiceConfig,
};
use nurd_sim::{replay_job, ReplayConfig, ReplayOutcome};
use nurd_trace::{SuiteConfig, TraceStyle};
use proptest::prelude::*;

const QUANTILE: f64 = 0.9;
const WARMUP: f64 = 0.04;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, unique engine directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nurd-recovery-{tag}-{}-{seq}", std::process::id()));
    // A stale run's leftovers would change recovery's input.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn suite(seed: u64, jobs: usize) -> Vec<nurd_data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(jobs)
        .with_task_range(50, 70)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd_trace::generate_suite(&cfg)
}

fn nurd_factory(policy: RefitPolicy) -> PredictorFactory {
    Box::new(move |_spec: &JobSpec| {
        Box::new(NurdPredictor::new(
            NurdConfig::default().with_refit_policy(policy.clone()),
        ))
    })
}

/// Flags every running task at its first scored checkpoint, and has **no
/// `snapshot_state`** — forcing the engine's history-mode persistence
/// (retain + replay the job's accepted events through a fresh predictor).
struct FlagAll;
impl OnlinePredictor for FlagAll {
    fn name(&self) -> &str {
        "ALL"
    }
    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        checkpoint.running.iter().map(|r| r.id).collect()
    }
}

fn engine_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        warmup_fraction: WARMUP,
        queue_capacity: Some(16),
        overload: OverloadPolicy::Block,
        balance: None,
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        drain_workers: 2,
        drain_batch: 8,
    }
}

/// Pushes each producer stream on its own thread, skipping the first
/// `events_seen[job]` events of every job — the durable prefix already
/// inside the recovered engine.
fn run_producers(
    service: &EngineService,
    streams: Vec<Vec<TaskEvent>>,
    events_seen: &BTreeMap<u64, u64>,
) -> usize {
    let producers: Vec<_> = streams
        .into_iter()
        .map(|stream| {
            let handle = service.handle();
            let seen = events_seen.clone();
            std::thread::spawn(move || {
                let mut pushed = 0usize;
                let mut position: BTreeMap<u64, u64> = BTreeMap::new();
                for event in stream {
                    let slot = position.entry(event.job()).or_insert(0);
                    let index = *slot;
                    *slot += 1;
                    if index < seen.get(&event.job()).copied().unwrap_or(0) {
                        continue; // already durable in the recovered state
                    }
                    assert!(handle.push(event), "push rejected on a live service");
                    pushed += 1;
                }
                pushed
            })
        })
        .collect();
    producers.into_iter().map(|p| p.join().unwrap()).sum()
}

/// Drains a service to its final per-job reports (mid-stream
/// `take_finalized` plus the `close()` remainder), id-sorted.
fn collect_reports(service: &EngineService) -> Vec<nurd_serve::JobReport> {
    let mut reports = service.take_finalized();
    let report = service.close();
    assert_eq!(report.overload.lost_events(), 0, "Block must be lossless");
    reports.extend(report.jobs);
    reports.sort_by_key(|r| r.job);
    reports
}

fn assert_outcomes_match(
    reports: &[nurd_serve::JobReport],
    expected: &[(u64, ReplayOutcome)],
    context: &str,
) {
    assert_eq!(
        reports.len(),
        expected.len(),
        "{context}: every job must be reported exactly once"
    );
    for (job_id, outcome) in expected {
        let got = reports
            .iter()
            .find(|r| r.job == *job_id)
            .unwrap_or_else(|| panic!("{context}: job {job_id} missing from reports"));
        assert_eq!(
            &got.outcome, outcome,
            "{context}: job {job_id} diverged from the never-crashed sequential replay"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// **The acceptance property.** Three producer threads stream a
    /// 3-job fleet into a persistent service whose WAL dies at a random
    /// record budget (sometimes with a torn half-written tail). The
    /// service is then dropped *without* `close()` — the crash. Recovery
    /// rebuilds a running service from the directory; the producers
    /// resume each job from [`RecoverReport::events_seen`]; and every
    /// job's final outcome is bit-for-bit the sequential `replay_job`
    /// result, at shard counts {1, 2, 8}. With `corrupt_latest`, the
    /// newest snapshot is bit-flipped post-crash and recovery must fall
    /// back to the previous valid one (longer WAL replay, same answer).
    #[test]
    fn prop_restart_equals_uninterrupted(
        seed in 0u64..200,
        interleave_seed in 0u64..1000,
        crash_budget in 0u64..600,
        torn_flag in 0u8..2,
        mid_flag in 0u8..2,
        corrupt_flag in 0u8..2,
    ) {
        let (torn_tail, mid_checkpoint, corrupt_latest) =
            (torn_flag == 1, mid_flag == 1, corrupt_flag == 1);
        let jobs = suite(seed, 3);
        let policy = RefitPolicy::Warm(WarmRefitConfig::default());
        let replay_cfg = ReplayConfig { quantile: QUANTILE, warmup_fraction: WARMUP };
        let expected: Vec<(u64, ReplayOutcome)> = jobs
            .iter()
            .map(|job| {
                let mut reference =
                    NurdPredictor::new(NurdConfig::default().with_refit_policy(policy.clone()));
                (job.job_id(), replay_job(job, &mut reference, &replay_cfg))
            })
            .collect();

        for shards in [1usize, 2, 8] {
            let dir = scratch_dir("prop");
            let fault = {
                let f = FaultInjector::crash_after_wal_records(crash_budget);
                if torn_tail { f.with_torn_tail() } else { f }
            };
            // Always-fsync keeps "durable" == "admitted by the injector",
            // so the crash point is exactly the record budget.
            let mut persistence = PersistenceConfig::new(&dir);
            persistence.fsync = FsyncPolicy::Always;
            persistence.retain_generations = 4;
            persistence.fault = Some(Arc::clone(&fault));

            // ----- the run that will crash -----
            let doomed = EngineService::start_persistent(
                engine_config(shards),
                service_config(),
                persistence,
                nurd_factory(policy.clone()),
            )
            .unwrap();
            let streams = nurd_trace::producer_streams(&jobs, 3, QUANTILE, interleave_seed);
            if mid_checkpoint {
                // First halves, settle, snapshot; second halves ride the
                // WAL tail past the snapshot generation.
                let firsts: Vec<Vec<TaskEvent>> = streams
                    .iter()
                    .map(|s| s[..s.len() / 2].to_vec())
                    .collect();
                run_producers(&doomed, firsts, &BTreeMap::new());
                doomed.quiesce();
                doomed.checkpoint().unwrap();
                let seconds: Vec<Vec<TaskEvent>> = streams
                    .iter()
                    .map(|s| {
                        let mut skip: BTreeMap<u64, u64> = BTreeMap::new();
                        for e in &s[..s.len() / 2] {
                            *skip.entry(e.job()).or_insert(0) += 1;
                        }
                        let mut position: BTreeMap<u64, u64> = BTreeMap::new();
                        s.iter()
                            .filter(|e| {
                                let slot = position.entry(e.job()).or_insert(0);
                                let index = *slot;
                                *slot += 1;
                                index >= skip.get(&e.job()).copied().unwrap_or(0)
                            })
                            .cloned()
                            .collect()
                    })
                    .collect();
                run_producers(&doomed, seconds, &BTreeMap::new());
            } else {
                run_producers(&doomed, streams.clone(), &BTreeMap::new());
            }
            doomed.quiesce();
            drop(doomed); // the crash: no close(), no shutdown snapshot

            if corrupt_latest {
                // Bit-flip the newest snapshot (when one exists):
                // recovery must fall back, never half-load.
                let mut snaps: Vec<_> = std::fs::read_dir(&dir)
                    .unwrap()
                    .filter_map(|e| {
                        let name = e.unwrap().file_name().into_string().ok()?;
                        let generation: u64 = name
                            .strip_prefix("snap-")?
                            .strip_suffix(".bin")?
                            .parse()
                            .ok()?;
                        Some((generation, name))
                    })
                    .collect();
                snaps.sort();
                if let Some((_, name)) = snaps.last() {
                    let path = dir.join(name);
                    let mut bytes = std::fs::read(&path).unwrap();
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x01;
                    std::fs::write(&path, &bytes).unwrap();
                }
            }

            // ----- recovery -----
            let (revived, recover) = EngineService::recover(
                PersistenceConfig::new(&dir),
                engine_config(shards),
                service_config(),
                nurd_factory(policy.clone()),
            )
            .unwrap();
            if corrupt_latest && mid_checkpoint {
                // The one pre-crash snapshot was bit-flipped: recovery
                // must skip it (counted) — never half-load it.
                prop_assert!(recover.recovery_fallbacks >= 1);
            }
            // Zero accepted-event loss up to the last fsync: every WAL
            // record the injector admitted (and everything a snapshot
            // captured) is in the recovered state.
            let total_events: u64 = streams.iter().map(|s| s.len() as u64).sum();
            let durable: u64 = recover.events_seen.values().sum();
            prop_assert!(
                durable >= crash_budget.min(total_events) || (corrupt_latest && mid_checkpoint),
                "accepted-event loss: {durable} durable < {crash_budget} admitted"
            );
            prop_assert!(durable <= total_events, "recovered more events than were pushed");
            run_producers(&revived, streams, &recover.events_seen);
            revived.quiesce();
            let stats = revived.stats();
            prop_assert_eq!(stats.recovery_fallbacks, recover.recovery_fallbacks);
            let reports = collect_reports(&revived);
            assert_outcomes_match(
                &reports,
                &expected,
                &format!(
                    "shards={shards} budget={crash_budget} torn={torn_tail} \
                     mid_checkpoint={mid_checkpoint} corrupt={corrupt_latest}"
                ),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// History-mode recovery: `FlagAll` has no `snapshot_state`, so the
/// engine persists each live job's accepted events and replays them
/// through a factory-fresh predictor at decode time. Crash mid-stream,
/// recover, resume — outcomes still equal sequential replay.
#[test]
fn history_mode_predictor_recovers_by_replaying_events() {
    let jobs = suite(11, 3);
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    let expected: Vec<(u64, ReplayOutcome)> = jobs
        .iter()
        .map(|job| (job.job_id(), replay_job(job, &mut FlagAll, &replay_cfg)))
        .collect();
    let factory = || -> PredictorFactory { Box::new(|_| Box::new(FlagAll)) };

    for crash_budget in [0u64, 37, 150] {
        let dir = scratch_dir("history");
        let mut persistence = PersistenceConfig::new(&dir);
        persistence.fsync = FsyncPolicy::Always;
        persistence.fault = Some(FaultInjector::crash_after_wal_records(crash_budget));
        let doomed = EngineService::start_persistent(
            engine_config(2),
            service_config(),
            persistence,
            factory(),
        )
        .unwrap();
        let streams = nurd_trace::producer_streams(&jobs, 3, QUANTILE, 7);
        run_producers(&doomed, streams.clone(), &BTreeMap::new());
        doomed.quiesce();
        doomed.checkpoint().unwrap(); // live jobs enter the snapshot as history
        drop(doomed);

        let (revived, recover) = EngineService::recover(
            PersistenceConfig::new(&dir),
            engine_config(2),
            service_config(),
            factory(),
        )
        .unwrap();
        run_producers(&revived, streams, &recover.events_seen);
        revived.quiesce();
        let reports = collect_reports(&revived);
        assert_outcomes_match(&reports, &expected, &format!("budget={crash_budget}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Satellite (c): every corrupt-artifact shape is a typed
/// [`RecoverError`] from the public probe, and a full recovery falls
/// back past the corrupted newest snapshot to the previous valid one.
#[test]
fn corrupt_artifacts_are_rejected_typed_and_recovery_falls_back() {
    let jobs = suite(3, 2);
    let dir = scratch_dir("corrupt");
    let mut persistence = PersistenceConfig::new(&dir);
    persistence.fsync = FsyncPolicy::Always;
    persistence.retain_generations = 4;
    let service = EngineService::start_persistent(
        engine_config(2),
        service_config(),
        persistence,
        Box::new(|_| Box::new(FlagAll)),
    )
    .unwrap();
    let streams = nurd_trace::producer_streams(&jobs, 2, QUANTILE, 3);
    // Two snapshot generations: halves of the fleet, checkpointed apart.
    let firsts: Vec<Vec<TaskEvent>> = streams.iter().map(|s| s[..s.len() / 3].to_vec()).collect();
    run_producers(&service, firsts.clone(), &BTreeMap::new());
    service.quiesce();
    let older = service.checkpoint().unwrap();
    let seconds: Vec<Vec<TaskEvent>> = streams
        .iter()
        .zip(&firsts)
        .map(|(s, f)| s[f.len()..].to_vec())
        .collect();
    run_producers(&service, seconds, &BTreeMap::new());
    service.quiesce();
    let newer = service.checkpoint().unwrap();
    assert!(newer > older);
    let _ = service.close();

    // close() wrote a shutdown snapshot past `newer`; the *newest* file
    // on disk is the one recovery will try first.
    let snap = |generation: u64| dir.join(format!("snap-{generation}.bin"));
    let newest = {
        let mut generations: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().ok()?;
                name.strip_prefix("snap-")?
                    .strip_suffix(".bin")?
                    .parse()
                    .ok()
            })
            .collect();
        generations.sort_unstable();
        *generations.last().unwrap()
    };
    assert!(newest > newer);
    let pristine = std::fs::read(snap(newest)).unwrap();

    // Typed-error probes on a scratch path (ignored by the directory
    // scanner, so they cannot disturb the fallback test below).
    let probe = dir.join("probe.bin");

    // Truncated snapshot → Truncated (or mid-record checksum damage).
    std::fs::write(&probe, &pristine[..pristine.len() / 2]).unwrap();
    assert!(matches!(
        read_snapshot(&probe),
        Err(RecoverError::Truncated | RecoverError::ChecksumMismatch)
    ));

    // Wrong magic → WrongMagic.
    let mut wrong = pristine.clone();
    wrong[..8].copy_from_slice(b"GARBAGE!");
    std::fs::write(&probe, &wrong).unwrap();
    assert!(matches!(
        read_snapshot(&probe),
        Err(RecoverError::WrongMagic)
    ));

    // Future format version → UnsupportedVersion(v).
    let mut future = pristine.clone();
    future[8..12].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&probe, &future).unwrap();
    assert!(matches!(
        read_snapshot(&probe),
        Err(RecoverError::UnsupportedVersion(7))
    ));

    // Checksum mismatch → ChecksumMismatch.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x80;
    std::fs::write(&probe, &flipped).unwrap();
    assert!(matches!(
        read_snapshot(&probe),
        Err(RecoverError::ChecksumMismatch)
    ));

    // Full recovery with the newest snapshot bit-flipped in place: falls
    // back to an older valid generation — counted, never half-loaded.
    let mut damaged = pristine.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x01;
    std::fs::write(snap(newest), &damaged).unwrap();
    let (revived, recover) = EngineService::recover(
        PersistenceConfig::new(&dir),
        engine_config(2),
        service_config(),
        Box::new(|_| Box::new(FlagAll)),
    )
    .unwrap();
    assert!(
        recover.recovery_fallbacks >= 1,
        "corrupt snapshot must be counted"
    );
    assert!(
        recover.snapshot_generation.is_some_and(|g| g < newest),
        "recovery must land on an older valid snapshot"
    );
    assert_eq!(
        revived.stats().recovery_fallbacks,
        recover.recovery_fallbacks
    );
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    let expected: Vec<(u64, ReplayOutcome)> = jobs
        .iter()
        .map(|job| (job.job_id(), replay_job(job, &mut FlagAll, &replay_cfg)))
        .collect();
    run_producers(&revived, streams, &recover.events_seen);
    revived.quiesce();
    let reports = collect_reports(&revived);
    assert_outcomes_match(&reports, &expected, "fallback recovery");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (a): `close()` is idempotent — the second call returns the
/// first call's report instead of panicking or re-running shutdown.
#[test]
fn double_close_returns_the_first_report() {
    let jobs = suite(5, 2);
    let dir = scratch_dir("double-close");
    let service = EngineService::start_persistent(
        engine_config(2),
        service_config(),
        PersistenceConfig::new(&dir),
        Box::new(|_| Box::new(FlagAll)),
    )
    .unwrap();
    let streams = nurd_trace::producer_streams(&jobs, 2, QUANTILE, 1);
    run_producers(&service, streams, &BTreeMap::new());
    let first = service.close();
    let snapshots_after_first = service.stats().snapshots_written;
    let second = service.close();
    assert_eq!(first.events, second.events);
    assert_eq!(first.jobs.len(), second.jobs.len());
    assert_eq!(
        service.stats().snapshots_written,
        snapshots_after_first,
        "second close must not write another shutdown snapshot"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (a): dropping an unclosed service still flushes the WAL —
/// the `Drop` guard makes a plain `drop` lose only what a crash would.
#[test]
fn drop_guard_flushes_wal_buffers() {
    let jobs = suite(9, 2);
    let dir = scratch_dir("drop-guard");
    let mut persistence = PersistenceConfig::new(&dir);
    // Never fsync on the drain path: everything accepted sits in user-
    // space WAL buffers, so durability here is the Drop guard's doing.
    persistence.fsync = FsyncPolicy::Never;
    let service = EngineService::start_persistent(
        engine_config(2),
        service_config(),
        persistence,
        Box::new(|_| Box::new(FlagAll)),
    )
    .unwrap();
    let streams = nurd_trace::producer_streams(&jobs, 2, QUANTILE, 2);
    let total: usize = streams.iter().map(Vec::len).sum();
    run_producers(&service, streams.clone(), &BTreeMap::new());
    service.quiesce();
    drop(service); // no close(): the guard must flush the buffered WAL

    let (revived, recover) = EngineService::recover(
        PersistenceConfig::new(&dir),
        engine_config(2),
        service_config(),
        Box::new(|_| Box::new(FlagAll)),
    )
    .unwrap();
    let durable: u64 = recover.events_seen.values().sum();
    assert_eq!(
        durable as usize, total,
        "every drained event must survive the Drop guard's flush"
    );
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    let expected: Vec<(u64, ReplayOutcome)> = jobs
        .iter()
        .map(|job| (job.job_id(), replay_job(job, &mut FlagAll, &replay_cfg)))
        .collect();
    run_producers(&revived, streams, &recover.events_seen);
    revived.quiesce();
    let reports = collect_reports(&revived);
    assert_outcomes_match(&reports, &expected, "drop-guard recovery");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (f): finalized jobs' predictor states are kept as donor
/// seeds keyed by job-shape signature, ride the snapshot, and survive
/// recovery (storage only — nothing consumes them yet).
#[test]
fn donor_seeds_persist_across_recovery() {
    let jobs = suite(21, 3);
    let dir = scratch_dir("donor");
    let policy = RefitPolicy::Warm(WarmRefitConfig::default());
    let service = EngineService::start_persistent(
        engine_config(2),
        service_config(),
        PersistenceConfig::new(&dir),
        nurd_factory(policy.clone()),
    )
    .unwrap();
    let streams = nurd_trace::producer_streams(&jobs, 3, QUANTILE, 5);
    let specs: BTreeMap<u64, JobSpec> = streams
        .iter()
        .flatten()
        .filter_map(|e| match e {
            TaskEvent::JobStart { spec } => Some((spec.job, spec.clone())),
            _ => None,
        })
        .collect();
    run_producers(&service, streams, &BTreeMap::new());
    service.quiesce();
    let seeds = service.donor_seeds();
    assert!(
        !seeds.is_empty(),
        "finalized blob-capable jobs must leave donor seeds"
    );
    for seed in &seeds {
        let spec = specs.get(&seed.job).expect("seed for a known job");
        assert_eq!(seed.signature, job_signature(spec));
        assert!(!seed.state.is_empty(), "donor state blob must be captured");
    }
    let _ = service.close();

    let (revived, recover) = EngineService::recover(
        PersistenceConfig::new(&dir),
        engine_config(2),
        service_config(),
        nurd_factory(policy),
    )
    .unwrap();
    assert_eq!(recover.donor_seeds, seeds.len());
    let recovered = revived.donor_seeds();
    assert_eq!(recovered, seeds, "donor seeds must round-trip the snapshot");
    let _ = revived.close();
    std::fs::remove_dir_all(&dir).ok();
}
