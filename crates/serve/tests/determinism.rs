//! The engine's determinism contract, end to end:
//!
//! 1. **Engine ≡ sequential replay** — every job's [`nurd_sim::ReplayOutcome`]
//!    out of the engine is bit-for-bit the outcome of
//!    `nurd_sim::replay_job` on the same trace with the same predictor
//!    configuration (NURD itself, warm and cold policies alike).
//! 2. **Shard-count invariance** — shards {1, 2, 8} produce identical
//!    [`nurd_serve::EngineReport`]s.
//! 3. **Interleaving invariance** — any random merge of the per-job
//!    event streams (per-job order preserved) produces the identical
//!    report, as does any drain batching.
//! 4. **Lifecycle invariance** — all of the above survive *streaming*
//!    operation: jobs admitted mid-stream by their `JobStart`, finalized
//!    individually by `JobEnd`/stream completion, reports taken
//!    mid-stream — at staggered, seeded arrival/departure orders.

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::{job_events, job_stream, JobSpec, TaskEvent};
use nurd_runtime::ThreadPool;
use nurd_serve::{Engine, EngineConfig, EngineReport, JobReport, PredictorFactory};
use nurd_sim::{replay_job, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};
use proptest::prelude::*;

const QUANTILE: f64 = 0.9;
const WARMUP: f64 = 0.04;

fn suite(seed: u64, jobs: usize) -> Vec<nurd_data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(jobs)
        .with_task_range(50, 70)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd_trace::generate_suite(&cfg)
}

fn nurd_factory(policy: RefitPolicy) -> PredictorFactory {
    Box::new(move |_spec: &JobSpec| {
        Box::new(NurdPredictor::new(
            NurdConfig::default().with_refit_policy(policy.clone()),
        ))
    })
}

fn run_engine(
    jobs: &[nurd_data::JobTrace],
    events: Vec<TaskEvent>,
    shards: usize,
    pool: &ThreadPool,
    policy: &RefitPolicy,
) -> EngineReport {
    let engine = Engine::new(
        EngineConfig {
            shards,
            warmup_fraction: WARMUP,
            ..EngineConfig::default()
        },
        nurd_factory(policy.clone()),
    );
    for job in jobs {
        engine.admit(JobSpec::of_trace(job, QUANTILE));
    }
    engine.push_all_sync(events);
    engine.finish(pool)
}

fn warm_policy() -> RefitPolicy {
    RefitPolicy::Warm(WarmRefitConfig::default())
}

#[test]
fn engine_report_equals_sequential_replay_for_warm_and_cold_nurd() {
    let jobs = suite(0x5EED, 3);
    let pool = ThreadPool::new(2);
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    for policy in [RefitPolicy::AlwaysCold, warm_policy()] {
        let (_, events) = nurd_trace::fleet_events(&jobs, QUANTILE);
        let report = run_engine(&jobs, events, 4, &pool, &policy);
        assert_eq!(report.jobs.len(), jobs.len());
        for job in &jobs {
            let mut reference =
                NurdPredictor::new(NurdConfig::default().with_refit_policy(policy.clone()));
            let expected = replay_job(job, &mut reference, &replay_cfg);
            let got = report.job(job.job_id()).expect("job reported");
            assert_eq!(
                got.outcome,
                expected,
                "engine diverged from sequential replay on job {} under {policy:?}",
                job.job_id()
            );
        }
    }
}

#[test]
fn engine_actually_flags_stragglers() {
    // Guard against vacuous equality (both sides predicting nothing).
    let jobs = suite(0xACE, 4);
    let pool = ThreadPool::new(2);
    let (_, events) = nurd_trace::fleet_events(&jobs, QUANTILE);
    let report = run_engine(&jobs, events, 2, &pool, &warm_policy());
    let flagged: usize = report
        .jobs
        .iter()
        .map(|r| r.outcome.flagged_at.iter().flatten().count())
        .sum();
    assert!(flagged > 0, "no task was ever flagged — test is vacuous");
    assert!(report.macro_f1() > 0.0);
    let scored: usize = report.jobs.iter().map(|r| r.checkpoints_scored).sum();
    assert!(scored >= jobs.len(), "predictors were never invoked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Shard counts {1, 2, 8} and any random per-job-order-preserving
    /// interleaving yield the identical report; drain batching too.
    #[test]
    fn prop_report_invariant_to_shards_and_interleaving(
        seed in 0u64..500,
        shuffle_seed in 0u64..1000,
    ) {
        let jobs = suite(seed, 3);
        let policy = warm_policy();
        let pool = ThreadPool::new(2);

        // Canonical time-ordered interleaving, 1 shard: the baseline.
        let (_, canonical) = nurd_trace::fleet_events(&jobs, QUANTILE);
        let baseline = run_engine(&jobs, canonical.clone(), 1, &pool, &policy);

        // Same events, more shards.
        for shards in [2usize, 8] {
            let report = run_engine(&jobs, canonical.clone(), shards, &pool, &policy);
            prop_assert_eq!(&report, &baseline, "shard count {} changed the report", shards);
        }

        // Random interleaving of the raw per-job streams.
        let streams: Vec<Vec<TaskEvent>> = jobs
            .iter()
            .map(|j| job_events(j, QUANTILE).1)
            .collect();
        let shuffled = nurd_trace::interleave_events(streams, shuffle_seed);
        let report = run_engine(&jobs, shuffled.clone(), 8, &pool, &policy);
        prop_assert_eq!(&report, &baseline, "interleaving changed the report");

        // Incremental drains between small batches.
        let engine = Engine::new(
            EngineConfig { shards: 2, warmup_fraction: WARMUP, ..EngineConfig::default() },
            nurd_factory(policy.clone()),
        );
        for job in &jobs {
            engine.admit(JobSpec::of_trace(job, QUANTILE));
        }
        for chunk in shuffled.chunks(97) {
            engine.push_all_sync(chunk.to_vec());
            engine.drain_sync(&pool);
        }
        prop_assert_eq!(&engine.finish(&pool), &baseline, "drain batching changed the report");
    }

    /// The determinism contract re-proven for the *streaming* lifecycle:
    /// jobs arrive mid-stream (`JobStart` at staggered, seeded offsets),
    /// end individually (`JobEnd` / stream completion), and reports are
    /// taken mid-stream — yet every job's `ReplayOutcome` stays
    /// bit-for-bit the sequential `replay_job` result, across shard
    /// counts {1, 2, 8} and seeded interleavings.
    #[test]
    fn prop_streaming_lifecycle_preserves_per_job_outcomes(
        seed in 0u64..500,
        stagger_seed in 0u64..1000,
    ) {
        let jobs = suite(seed, 3);
        let policy = warm_policy();
        let pool = ThreadPool::new(2);
        let replay_cfg = ReplayConfig { quantile: QUANTILE, warmup_fraction: WARMUP };

        // Sequential reference, one isolated replay per job.
        let expected: Vec<(u64, nurd_sim::ReplayOutcome)> = jobs
            .iter()
            .map(|job| {
                let mut reference =
                    NurdPredictor::new(NurdConfig::default().with_refit_policy(policy.clone()));
                (job.job_id(), replay_job(job, &mut reference, &replay_cfg))
            })
            .collect();

        // Two streaming workload shapes: a seeded staggered-arrival merge
        // (spread far beyond any job's duration, so arrivals and
        // departures genuinely overlap mid-stream) and a seeded random
        // merge of the lifecycle-bracketed per-job streams.
        let staggered = nurd_trace::staggered_fleet_events(&jobs, QUANTILE, 1e5, stagger_seed);
        let shuffled = nurd_trace::interleave_events(
            jobs.iter().map(|j| job_stream(j, QUANTILE)).collect(),
            stagger_seed,
        );

        let mut baseline: Option<Vec<JobReport>> = None;
        for (stream, shards) in [
            (&staggered, 1usize),
            (&staggered, 2),
            (&staggered, 8),
            (&shuffled, 8),
        ] {
            let engine = Engine::new(
                EngineConfig { shards, warmup_fraction: WARMUP, ..EngineConfig::default() },
                nurd_factory(policy.clone()),
            );
            // Chunked pushes with mid-stream report taking — the
            // long-lived-service usage pattern.
            let mut reports: Vec<JobReport> = Vec::new();
            for chunk in stream.chunks(137) {
                engine.push_all_sync(chunk.to_vec());
                engine.drain_sync(&pool);
                reports.extend(engine.take_finalized());
            }
            reports.extend(engine.finish(&pool).jobs);
            reports.sort_by_key(|r| r.job);
            prop_assert_eq!(reports.len(), jobs.len(), "every job reported exactly once");

            for (job_id, outcome) in &expected {
                let got = reports.iter().find(|r| r.job == *job_id).expect("job reported");
                prop_assert_eq!(
                    &got.outcome,
                    outcome,
                    "streaming engine diverged from sequential replay on job {} at {} shards",
                    job_id,
                    shards
                );
            }
            // Full per-job reports (scored counts, finalize reasons)
            // are themselves invariant across shard counts and merges.
            match &baseline {
                Some(base) => prop_assert_eq!(&reports, base, "{} shards changed reports", shards),
                None => baseline = Some(reports),
            }
        }
    }
}
