//! The concurrent ingestion service, exercised with **real producer
//! threads** against the **background drain loop**:
//!
//! 1. The determinism contract in service mode — ≥ 2 producer threads
//!    pushing through cloned [`EngineHandle`]s into a *saturated* engine
//!    (tiny bounded queues, `Block` ⇒ true blocking sends), per-job
//!    [`nurd_sim::ReplayOutcome`]s bit-for-bit equal to sequential
//!    `replay_job`, across shard counts {1, 2, 8}, with zero lost
//!    events.
//! 2. Concurrent lifecycle edges: `JobStart`/`JobEnd` racing across
//!    producer threads, blocking-send wakeup under a saturated shard,
//!    and `close()` during in-flight pushes — all with zero
//!    lost/malformed events under `Block`.
//! 3. Adaptive shard balancing: a backlogged shard grants (and
//!    withdraws) within-job parallelism without changing any report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
use nurd_serve::{
    BalanceConfig, EngineConfig, EngineService, FinalizeReason, OverloadPolicy, PredictorFactory,
    ServiceConfig,
};
use nurd_sim::{replay_job, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};
use proptest::prelude::*;

const QUANTILE: f64 = 0.9;
const WARMUP: f64 = 0.04;

fn suite(seed: u64, jobs: usize) -> Vec<nurd_data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(jobs)
        .with_task_range(50, 70)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd_trace::generate_suite(&cfg)
}

fn nurd_factory(policy: RefitPolicy) -> PredictorFactory {
    Box::new(move |_spec: &JobSpec| {
        Box::new(NurdPredictor::new(
            NurdConfig::default().with_refit_policy(policy.clone()),
        ))
    })
}

/// Flags every running task at its first scored checkpoint — cheap, so
/// saturation tests stress the transport, not the model.
struct FlagAll;
impl OnlinePredictor for FlagAll {
    fn name(&self) -> &str {
        "ALL"
    }
    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        checkpoint.running.iter().map(|r| r.id).collect()
    }
}

fn flag_all_factory() -> PredictorFactory {
    Box::new(|_| Box::new(FlagAll))
}

/// Round-robin job partition + per-producer seeded interleave — the
/// shared workload shape for concurrent ingestion.
fn producer_streams(
    jobs: &[nurd_data::JobTrace],
    producers: usize,
    interleave_seed: u64,
) -> Vec<Vec<TaskEvent>> {
    nurd_trace::producer_streams(jobs, producers, QUANTILE, interleave_seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// **The acceptance property.** Three real producer threads push a
    /// 3-job fleet through a service whose shards hold at most 16
    /// undrained events (`Block`: saturated producers sleep in the send
    /// until the background drain makes room — not an inline drain).
    /// Every job's `ReplayOutcome` is bit-for-bit the sequential
    /// `replay_job` result, at shard counts {1, 2, 8}; no event is lost.
    #[test]
    fn prop_service_mode_matches_sequential_replay_under_saturation(
        seed in 0u64..500,
        interleave_seed in 0u64..1000,
    ) {
        let jobs = suite(seed, 3);
        let policy = RefitPolicy::Warm(WarmRefitConfig::default());
        let replay_cfg = ReplayConfig { quantile: QUANTILE, warmup_fraction: WARMUP };

        // Sequential reference, one isolated replay per job.
        let expected: Vec<(u64, nurd_sim::ReplayOutcome)> = jobs
            .iter()
            .map(|job| {
                let mut reference =
                    NurdPredictor::new(NurdConfig::default().with_refit_policy(policy.clone()));
                (job.job_id(), replay_job(job, &mut reference, &replay_cfg))
            })
            .collect();
        let total_events: usize = producer_streams(&jobs, 3, interleave_seed)
            .iter()
            .map(Vec::len)
            .sum();

        for shards in [1usize, 2, 8] {
            let service = EngineService::start(
                EngineConfig {
                    shards,
                    warmup_fraction: WARMUP,
                    queue_capacity: Some(16),
                    overload: OverloadPolicy::Block,
                    balance: None,
                },
                ServiceConfig { drain_workers: 2, drain_batch: 8 },
                nurd_factory(policy.clone()),
            );
            let producers: Vec<_> = producer_streams(&jobs, 3, interleave_seed)
                .into_iter()
                .map(|stream| {
                    let handle = service.handle();
                    std::thread::spawn(move || handle.push_all(stream))
                })
                .collect();
            let accepted: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
            prop_assert_eq!(accepted, total_events, "Block rejected an event");

            // Mid-stream reports plus the close() remainder cover every
            // job exactly once.
            let mut reports = service.take_finalized();
            let report = service.close();
            prop_assert_eq!(report.overload.lost_events(), 0, "Block lost events");
            prop_assert_eq!(report.events, total_events, "event accounting broke");
            reports.extend(report.jobs);
            reports.sort_by_key(|r| r.job);
            prop_assert_eq!(reports.len(), jobs.len(), "every job reported exactly once");

            for (job_id, outcome) in &expected {
                let got = reports.iter().find(|r| r.job == *job_id).expect("job reported");
                prop_assert_eq!(
                    &got.outcome,
                    outcome,
                    "service mode diverged from sequential replay on job {} at {} shards",
                    job_id,
                    shards
                );
            }
        }
    }
}

#[test]
fn job_lifecycles_race_across_producers_without_loss() {
    // 16 jobs' full lifecycles (JobStart … JobEnd) pushed by 4 racing
    // producer threads — admissions and finalizations interleave freely
    // across shards while the service drains in the background.
    let service = EngineService::start(
        EngineConfig {
            shards: 4,
            queue_capacity: Some(8),
            overload: OverloadPolicy::Block,
            ..EngineConfig::default()
        },
        ServiceConfig {
            drain_workers: 2,
            drain_batch: 4,
        },
        flag_all_factory(),
    );
    // Two declared checkpoints but only one barrier in the stream, so
    // the stream never self-completes: the explicit JobEnd must win.
    fn spec(job: u64) -> JobSpec {
        JobSpec {
            job,
            threshold: 10.0,
            task_count: 2,
            feature_dim: 1,
            checkpoints: 2,
        }
    }
    fn stream(job: u64) -> Vec<TaskEvent> {
        vec![
            TaskEvent::JobStart { spec: spec(job) },
            TaskEvent::Submitted { job, task: 0 },
            TaskEvent::Submitted { job, task: 1 },
            TaskEvent::Progress {
                job,
                task: 0,
                ordinal: 0,
                time: 1.0,
                features: vec![0.5],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 0,
                time: 1.0,
            },
            TaskEvent::JobEnd { job, time: 2.0 },
        ]
    }
    let pushed = Arc::new(AtomicUsize::new(0));
    let producers: Vec<_> = (0..4u64)
        .map(|p| {
            let handle = service.handle();
            let pushed = Arc::clone(&pushed);
            std::thread::spawn(move || {
                for job in (p * 4)..(p * 4 + 4) {
                    for event in stream(job) {
                        assert!(handle.push(event), "push rejected under Block");
                        pushed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for producer in producers {
        producer.join().unwrap();
    }
    service.quiesce();
    let stats = service.stats();
    assert_eq!(stats.finalized_jobs, 16, "a lifecycle was lost in the race");
    assert_eq!(stats.orphan_events, 0);
    assert_eq!(stats.rejected_events, 0);
    // The final barrier (all of one task's events seen, but task 1 never
    // reported) does not complete the stream, so JobEnd finalizes.
    let report = service.close();
    assert_eq!(report.events, pushed.load(Ordering::Relaxed));
    assert_eq!(report.overload.lost_events(), 0);
    assert_eq!(report.jobs.len(), 16);
    for r in &report.jobs {
        assert_eq!(r.finalized, FinalizeReason::JobEnd);
    }
}

#[test]
fn blocked_producers_wake_and_lose_nothing_on_a_saturated_shard() {
    // One shard of capacity 2: every producer spends most of its life
    // asleep inside a blocking send; each drain batch must wake them.
    let service = EngineService::start(
        EngineConfig {
            shards: 1,
            queue_capacity: Some(2),
            overload: OverloadPolicy::Block,
            ..EngineConfig::default()
        },
        ServiceConfig {
            drain_workers: 1,
            drain_batch: 1,
        },
        flag_all_factory(),
    );
    // Jobs with long event streams: 3 producers × 1 job × ~1200 events.
    let events_per_job = 1200usize;
    let producers: Vec<_> = (0..3u64)
        .map(|job| {
            let handle = service.handle();
            std::thread::spawn(move || {
                let mut accepted = handle.push(TaskEvent::JobStart {
                    spec: JobSpec {
                        job,
                        threshold: 1e9,
                        task_count: 1,
                        feature_dim: 1,
                        checkpoints: events_per_job,
                    },
                }) as usize;
                for ordinal in 0..events_per_job - 1 {
                    accepted += handle.push(TaskEvent::Progress {
                        job,
                        task: 0,
                        ordinal,
                        time: ordinal as f64,
                        features: vec![0.1],
                    }) as usize;
                }
                accepted
            })
        })
        .collect();
    let accepted: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
    assert_eq!(accepted, 3 * events_per_job, "a blocking send failed");
    let report = service.close();
    assert_eq!(report.events, 3 * events_per_job, "events vanished");
    assert_eq!(report.overload.lost_events(), 0);
    assert_eq!(report.jobs.len(), 3, "all jobs reported at close");
}

#[test]
fn close_during_in_flight_pushes_loses_no_accepted_event() {
    for round in 0..8u64 {
        let service = EngineService::start(
            EngineConfig {
                shards: 2,
                queue_capacity: Some(4),
                overload: OverloadPolicy::Block,
                ..EngineConfig::default()
            },
            ServiceConfig {
                drain_workers: 1,
                drain_batch: 2,
            },
            flag_all_factory(),
        );
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let job = round * 100 + p;
                let handle = service.handle();
                std::thread::spawn(move || {
                    let mut accepted = handle.push(TaskEvent::JobStart {
                        spec: JobSpec {
                            job,
                            threshold: 1e9,
                            task_count: 1,
                            feature_dim: 1,
                            checkpoints: 10_000,
                        },
                    }) as usize;
                    for ordinal in 0..5_000usize {
                        let ok = handle.push(TaskEvent::Progress {
                            job,
                            task: 0,
                            ordinal,
                            time: ordinal as f64,
                            features: vec![0.1],
                        });
                        if !ok {
                            // Closed mid-stream: every later push must
                            // fail too (no accept-after-reject holes in
                            // the per-job prefix).
                            assert!(
                                !handle.push(TaskEvent::JobEnd { job, time: 0.0 }),
                                "push accepted after the ingress closed"
                            );
                            break;
                        }
                        accepted += 1;
                    }
                    accepted
                })
            })
            .collect();
        // Close while the producers are mid-burst — some are asleep in a
        // blocking send right now and must wake with a clean rejection.
        std::thread::sleep(std::time::Duration::from_millis(3));
        let report = service.close();
        let accepted: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(
            report.events, accepted,
            "accepted events and applied events disagree after close"
        );
        assert_eq!(report.overload.lost_events(), 0);
    }
}

/// Panics at its first scored checkpoint — a buggy user predictor.
struct Bomb;
impl OnlinePredictor for Bomb {
    fn name(&self) -> &str {
        "BOMB"
    }
    fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> {
        panic!("predictor exploded");
    }
}

fn four_event_stream(job: u64) -> Vec<TaskEvent> {
    vec![
        TaskEvent::JobStart {
            spec: JobSpec {
                job,
                threshold: 1e9,
                task_count: 1,
                feature_dim: 1,
                checkpoints: 2,
            },
        },
        TaskEvent::Submitted { job, task: 0 },
        TaskEvent::Finished {
            job,
            task: 0,
            ordinal: 0,
            time: 1.0,
            features: vec![0.1],
            latency: 1.0,
        },
        TaskEvent::Barrier {
            job,
            ordinal: 0,
            time: 1.0,
        },
    ]
}

#[test]
fn predictor_panic_quarantines_the_job_not_the_service() {
    // One worker on one shard — the panic and its neighbors share a
    // drain — and two workers on two shards.
    predictor_panic_scenario(1, 1);
    predictor_panic_scenario(2, 2);
}

/// A drain-time predictor panic must be *contained*: the job is
/// finalized as [`FinalizeReason::Poisoned`] and counted, the drain
/// worker survives, unrelated jobs keep streaming, and `close()` returns
/// a normal report.
fn predictor_panic_scenario(shards: usize, drain_workers: usize) {
    let service = EngineService::start(
        EngineConfig {
            shards,
            queue_capacity: Some(4),
            overload: OverloadPolicy::Block,
            ..EngineConfig::default()
        },
        ServiceConfig {
            drain_workers,
            drain_batch: 4,
        },
        // Job 1 gets the bomb; every other job a healthy predictor.
        Box::new(|spec: &JobSpec| {
            if spec.job == 1 {
                Box::new(Bomb)
            } else {
                Box::new(FlagAll)
            }
        }),
    );
    let handle = service.handle();
    // The fourth event (the barrier) detonates job 1's predictor.
    for event in four_event_stream(1) {
        assert!(handle.push(event), "ingress must stay open");
    }
    service.quiesce();
    let stats = service.stats();
    assert_eq!(
        stats.poisoned_jobs, 1,
        "the panicking predictor must quarantine exactly its own job"
    );
    assert_eq!(service.job_phase(1), Some(nurd_serve::JobPhase::Finalized));
    // Post-quarantine events for the poisoned job are stale, not fatal.
    assert!(handle.push(TaskEvent::Progress {
        job: 1,
        task: 0,
        ordinal: 1,
        time: 2.0,
        features: vec![0.1],
    }));
    // An unrelated job admitted *after* the panic streams to a normal
    // finish through the same (still-alive) drain workers.
    for event in four_event_stream(2) {
        assert!(
            handle.push(event),
            "service must keep serving after a quarantine"
        );
    }
    assert!(handle.push(TaskEvent::Barrier {
        job: 2,
        ordinal: 1,
        time: 2.0,
    }));
    service.quiesce();
    assert!(
        service.stats().stale_events >= 1,
        "post-quarantine events must count stale"
    );
    // close() returns normally; the report records the quarantine.
    let report = service.close();
    let poisoned = report
        .jobs
        .iter()
        .find(|j| j.job == 1)
        .expect("poisoned job must still be reported");
    assert_eq!(
        poisoned.finalized,
        FinalizeReason::Poisoned,
        "at {shards} shards / {drain_workers} workers"
    );
    let healthy = report
        .jobs
        .iter()
        .find(|j| j.job == 2)
        .expect("healthy job must be reported");
    assert_eq!(healthy.finalized, FinalizeReason::StreamComplete);
}

#[test]
fn factory_panic_unblocks_producers_and_resurfaces_at_close() {
    // Admission (the factory call) is *not* quarantined — a panic there
    // means the service itself is broken, and the original worker-death
    // machinery must fire. One worker on one shard, then two on two (one
    // worker's death must break the whole service promptly; peers exit
    // on the failed flag).
    factory_panic_scenario(1, 1);
    factory_panic_scenario(2, 2);
}

fn factory_panic_scenario(shards: usize, drain_workers: usize) {
    let service = EngineService::start(
        EngineConfig {
            shards,
            queue_capacity: Some(4),
            overload: OverloadPolicy::Block,
            ..EngineConfig::default()
        },
        ServiceConfig {
            drain_workers,
            drain_batch: 4,
        },
        Box::new(|_| -> Box<dyn OnlinePredictor + Send> { panic!("factory exploded") }),
    );
    // The producer's first event (the admission) detonates the factory;
    // the producer then keeps pushing into a capacity-4 queue that no
    // one will ever drain again. The dying service must close the
    // ingress so the blocked sends come back rejected instead of
    // sleeping forever.
    let producer = {
        let handle = service.handle();
        std::thread::spawn(move || {
            handle.push(TaskEvent::JobStart {
                spec: JobSpec {
                    job: 1,
                    threshold: 1e9,
                    task_count: 1,
                    feature_dim: 1,
                    checkpoints: 2,
                },
            });
            let mut rejected = false;
            for ordinal in 0..10_000usize {
                if !handle.push(TaskEvent::Progress {
                    job: 1,
                    task: 0,
                    ordinal,
                    time: 2.0,
                    features: vec![0.1],
                }) {
                    rejected = true;
                    break;
                }
            }
            rejected
        })
    };
    assert!(
        producer.join().unwrap(),
        "producer must be unblocked by the dying service, not hang"
    );
    // Observers survive the poisoned shard (a monitor thread polling
    // these must not die with a generic poisoned-lock panic).
    let _ = service.stats();
    let _ = service.take_finalized();
    let _ = service.job_phase(1);
    // close() re-raises the drain worker's original panic payload.
    let closed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.close()));
    let payload = closed.expect_err("close must surface the worker panic");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("factory exploded"),
        "root cause lost at {shards} shards / {drain_workers} workers: {message:?}"
    );
}

/// A predictor that records the parallelism grants it receives and makes
/// each scored checkpoint slow, so the drain loop genuinely backlogs.
struct SlowProbe {
    grants: Arc<AtomicUsize>,
    threads: usize,
}
impl OnlinePredictor for SlowProbe {
    fn name(&self) -> &str {
        "SLOW-PROBE"
    }
    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        std::thread::sleep(std::time::Duration::from_micros(300));
        checkpoint.running.iter().map(|r| r.id).collect()
    }
    fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads;
        self.grants.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn adaptive_balancing_boosts_backlogged_shards_and_changes_no_report() {
    let jobs = suite(0xBA1A, 3);
    let streams = producer_streams(&jobs, 1, 7);
    let run = |balance: Option<BalanceConfig>, grants: Arc<AtomicUsize>| {
        let service = EngineService::start(
            EngineConfig {
                shards: 1,
                warmup_fraction: WARMUP,
                balance,
                ..EngineConfig::default()
            },
            ServiceConfig {
                drain_workers: 1,
                drain_batch: 16,
            },
            Box::new(move |_spec: &JobSpec| {
                Box::new(SlowProbe {
                    grants: Arc::clone(&grants),
                    threads: 1,
                })
            }),
        );
        // One fast producer, one slow-scoring shard: the unbounded
        // ingress backlogs far past the threshold.
        let handle = service.handle();
        handle.push_all(streams[0].clone());
        service.quiesce();
        let boosts = service.stats().balance_boosts;
        (service.close(), boosts)
    };

    let baseline_grants = Arc::new(AtomicUsize::new(0));
    let (baseline, baseline_boosts) = run(None, Arc::clone(&baseline_grants));
    assert_eq!(baseline_boosts, 0, "balancing ran while disabled");
    assert_eq!(
        baseline_grants.load(Ordering::Relaxed),
        0,
        "predictor granted threads while balancing disabled"
    );

    let grants = Arc::new(AtomicUsize::new(0));
    let (balanced, boosts) = run(
        Some(BalanceConfig {
            backlog_threshold: 64,
            min_tasks: 1,
            threads: 2,
        }),
        Arc::clone(&grants),
    );
    assert!(boosts >= 1, "backlogged shard was never boosted");
    assert!(
        grants.load(Ordering::Relaxed) >= 1,
        "boost never reached a predictor"
    );
    // The whole point: balancing is invisible in the output.
    assert_eq!(balanced.jobs, baseline.jobs, "balancing changed a report");
}

#[test]
fn balance_threshold_clamps_to_bounded_queue_capacity() {
    // BalanceConfig::default() (threshold 4096) with a capacity-32 queue
    // would be unsatisfiable un-clamped; the engine clamps to half the
    // capacity so the feature still engages under saturation.
    let grants = Arc::new(AtomicUsize::new(0));
    let factory_grants = Arc::clone(&grants);
    let service = EngineService::start(
        EngineConfig {
            shards: 1,
            queue_capacity: Some(32),
            overload: OverloadPolicy::Block,
            balance: Some(BalanceConfig {
                min_tasks: 1,
                threads: 2,
                ..BalanceConfig::default()
            }),
            ..EngineConfig::default()
        },
        ServiceConfig {
            drain_workers: 1,
            drain_batch: 8,
        },
        Box::new(move |_spec: &JobSpec| {
            Box::new(SlowProbe {
                grants: Arc::clone(&factory_grants),
                threads: 1,
            })
        }),
    );
    let jobs = suite(0xC1A, 2);
    let handle = service.handle();
    for stream in nurd_trace::producer_streams(&jobs, 1, 0.9, 3) {
        handle.push_all(stream);
    }
    service.quiesce();
    assert!(
        service.stats().balance_boosts >= 1,
        "default threshold must clamp to the bounded queue and fire"
    );
    let report = service.close();
    assert_eq!(report.jobs.len(), 2);
}

#[test]
fn quiesce_settles_the_backlog_for_mid_stream_observation() {
    let service = EngineService::start(
        EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
        flag_all_factory(),
    );
    let spec = JobSpec {
        job: 42,
        threshold: 10.0,
        task_count: 1,
        feature_dim: 1,
        checkpoints: 2,
    };
    assert!(service.admit(spec));
    assert!(service.push(TaskEvent::Submitted { job: 42, task: 0 }));
    service.quiesce();
    let stats = service.stats();
    assert_eq!(stats.backlog_per_shard.iter().sum::<usize>(), 0);
    assert_eq!(stats.events_per_shard.iter().sum::<usize>(), 2);
    assert_eq!(
        service.job_phase(42),
        Some(nurd_serve::JobPhase::Admitted),
        "drained state must be observable after quiesce"
    );
    let report = service.close();
    assert_eq!(report.jobs.len(), 1);
    assert_eq!(report.jobs[0].finalized, FinalizeReason::EngineFinish);
}
