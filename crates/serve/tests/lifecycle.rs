//! Lifecycle edges of the streaming engine: mid-stream admission, events
//! after finalization, `JobEnd` before the warmup quorum, phase
//! transitions, and overload policies on a saturated shard.

use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
use nurd_runtime::ThreadPool;
use nurd_serve::{
    Engine, EngineConfig, FinalizeReason, JobPhase, OverloadPolicy, PredictorFactory,
};

/// Flags every running task at its first scored checkpoint.
struct FlagAll;
impl OnlinePredictor for FlagAll {
    fn name(&self) -> &str {
        "ALL"
    }
    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        checkpoint.running.iter().map(|r| r.id).collect()
    }
}

fn factory() -> PredictorFactory {
    Box::new(|_| Box::new(FlagAll))
}

fn spec(job: u64, checkpoints: usize) -> JobSpec {
    JobSpec {
        job,
        threshold: 10.0,
        task_count: 3,
        feature_dim: 1,
        checkpoints,
    }
}

fn submissions(job: u64) -> Vec<TaskEvent> {
    (0..3)
        .map(|task| TaskEvent::Submitted { job, task })
        .collect()
}

fn progress(job: u64, task: usize, ordinal: usize, time: f64) -> TaskEvent {
    TaskEvent::Progress {
        job,
        task,
        ordinal,
        time,
        features: vec![0.5],
    }
}

fn finished(job: u64, task: usize, ordinal: usize, time: f64, latency: f64) -> TaskEvent {
    TaskEvent::Finished {
        job,
        task,
        ordinal,
        time,
        features: vec![0.5],
        latency,
    }
}

fn barrier(job: u64, ordinal: usize, time: f64) -> TaskEvent {
    TaskEvent::Barrier { job, ordinal, time }
}

/// A complete 2-checkpoint stream: task 0 finishes fast, 1 finishes
/// under threshold, 2 never finishes.
fn full_stream(job: u64) -> Vec<TaskEvent> {
    let mut events = vec![TaskEvent::JobStart { spec: spec(job, 2) }];
    events.extend(submissions(job));
    events.extend([
        finished(job, 0, 0, 4.0, 2.0),
        progress(job, 1, 0, 4.0),
        progress(job, 2, 0, 4.0),
        barrier(job, 0, 4.0),
        finished(job, 1, 1, 8.0, 6.0),
        progress(job, 2, 1, 8.0),
        barrier(job, 1, 8.0),
        TaskEvent::JobEnd { job, time: 8.0 },
    ]);
    events
}

#[test]
fn events_for_a_finalized_job_are_stale_not_fatal() {
    let pool = ThreadPool::new(1);
    let clean = {
        let engine = Engine::new(EngineConfig::default(), factory());
        engine.push_all_sync(full_stream(1));
        engine.finish(&pool)
    };

    let engine = Engine::new(EngineConfig::default(), factory());
    engine.push_all_sync(full_stream(1));
    engine.drain_sync(&pool);
    assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
    // A whole burst after finalization: progress, a barrier, a second
    // JobEnd, even a JobStart restart of the dead id.
    engine.push_all_sync([
        progress(1, 2, 1, 8.0),
        barrier(1, 1, 8.0),
        TaskEvent::JobEnd { job: 1, time: 9.0 },
        TaskEvent::JobStart { spec: spec(1, 2) },
    ]);
    engine.drain_sync(&pool);
    let stats = engine.stats();
    // The last barrier already finalized the job, so the stream's own
    // JobEnd is stale too: 1 (in-stream JobEnd) + 4 late events.
    assert_eq!(stats.stale_events, 5);
    assert_eq!(stats.orphan_events, 0);
    assert_eq!(stats.rejected_events, 0);
    assert_eq!(stats.finalized_jobs, 1);
    let report = engine.finish(&pool);
    assert_eq!(report.jobs, clean.jobs, "stale events changed the report");
}

#[test]
fn job_end_before_warmup_quorum_finalizes_cleanly() {
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::default(), factory());
    let mut events = vec![TaskEvent::JobStart { spec: spec(7, 4) }];
    events.extend(submissions(7));
    // One checkpoint of pure progress — nothing finished, quorum
    // (1 task) never held — then the stream dies.
    events.extend([
        progress(7, 0, 0, 2.0),
        progress(7, 1, 0, 2.0),
        progress(7, 2, 0, 2.0),
        barrier(7, 0, 2.0),
        TaskEvent::JobEnd { job: 7, time: 2.5 },
    ]);
    engine.push_all_sync(events);
    engine.drain_sync(&pool);
    let reports = engine.take_finalized();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.finalized, FinalizeReason::JobEnd);
    assert_eq!(r.checkpoints_scored, 0, "predictor never ran pre-quorum");
    // The warmup fallback mirrors sequential replay: last checkpoint.
    assert_eq!(r.outcome.warmup_checkpoint, 3);
    // No task finished: all three outlived the stream, none was flagged.
    assert_eq!(r.outcome.confusion.false_negatives, 3);
    assert_eq!(r.outcome.confusion.total(), 3);
}

#[test]
fn jobs_walk_the_phase_state_machine() {
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::default(), factory());
    assert_eq!(engine.job_phase(5), None, "unknown before admission");

    engine.push_sync(TaskEvent::JobStart { spec: spec(5, 3) });
    engine.push_all_sync(submissions(5));
    engine.drain_sync(&pool);
    assert_eq!(engine.job_phase(5), Some(JobPhase::Admitted));

    // A closed checkpoint with no completions: warming, not scoring.
    engine.push_all_sync([
        progress(5, 0, 0, 1.0),
        progress(5, 1, 0, 1.0),
        progress(5, 2, 0, 1.0),
        barrier(5, 0, 1.0),
    ]);
    engine.drain_sync(&pool);
    assert_eq!(engine.job_phase(5), Some(JobPhase::Warming));

    // A completion satisfies the quorum at the next barrier: scoring.
    engine.push_all_sync([
        finished(5, 0, 1, 4.0, 2.0),
        progress(5, 1, 1, 4.0),
        progress(5, 2, 1, 4.0),
        barrier(5, 1, 4.0),
    ]);
    engine.drain_sync(&pool);
    assert_eq!(engine.job_phase(5), Some(JobPhase::Scoring));

    engine.push_sync(TaskEvent::JobEnd { job: 5, time: 5.0 });
    engine.drain_sync(&pool);
    assert_eq!(engine.job_phase(5), Some(JobPhase::Finalized));
    assert_eq!(engine.take_finalized().len(), 1);
}

#[test]
fn mid_stream_admission_after_another_job_finalized() {
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::default(), factory());
    // Job 1 lives and dies...
    engine.push_all_sync(full_stream(1));
    engine.drain_sync(&pool);
    assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
    // ...then job 2 arrives, long after, with no registry anywhere.
    engine.push_all_sync(full_stream(2));
    engine.drain_sync(&pool);
    let reports = engine.take_finalized();
    assert_eq!(
        reports.iter().map(|r| r.job).collect::<Vec<_>>(),
        vec![1, 2]
    );
    // Identical streams (modulo id) ⇒ identical outcomes.
    assert_eq!(reports[0].outcome.confusion, reports[1].outcome.confusion);
}

#[test]
fn shed_oldest_counts_and_survives_a_saturated_shard() {
    let pool = ThreadPool::new(1);
    let engine = Engine::new(
        EngineConfig {
            shards: 1,
            queue_capacity: Some(4),
            overload: OverloadPolicy::ShedOldest,
            ..EngineConfig::default()
        },
        factory(),
    );
    let stream = full_stream(1);
    let pushed = stream.len();
    engine.push_all_sync(stream);
    let report = engine.finish(&pool);
    // Capacity 4: every push past the fourth shed the oldest event.
    assert_eq!(report.overload.shed_events, pushed - 4);
    assert_eq!(report.overload.rejected_ingress, 0);
    assert_eq!(report.events, 4, "only the queue's worth was applied");
    // The punctured stream degrades gracefully: the JobStart itself was
    // shed, so the four survivors drained as orphans — nothing panicked
    // and the report simply carries no job.
    assert!(report.jobs.is_empty());
}

#[test]
fn reject_new_counts_and_keeps_the_oldest_window() {
    let pool = ThreadPool::new(1);
    let engine = Engine::new(
        EngineConfig {
            shards: 1,
            queue_capacity: Some(6),
            overload: OverloadPolicy::RejectNew,
            ..EngineConfig::default()
        },
        factory(),
    );
    let stream = full_stream(1);
    let pushed = stream.len();
    engine.push_all_sync(stream);
    let stats_mid = engine.stats();
    assert_eq!(stats_mid.overload.rejected_ingress, pushed - 6);
    let report = engine.finish(&pool);
    // The oldest window survived: JobStart + submissions + first events
    // were kept, so the job was admitted and partially observed.
    assert_eq!(report.events, 6);
    assert_eq!(report.jobs.len(), 1);
    assert_eq!(report.jobs[0].finalized, FinalizeReason::EngineFinish);
    assert_eq!(report.overload.rejected_ingress, pushed - 6);
}

#[test]
fn block_policy_is_lossless_backpressure() {
    let pool = ThreadPool::new(1);
    let run = |capacity: Option<usize>| {
        let engine = Engine::new(
            EngineConfig {
                shards: 1,
                queue_capacity: capacity,
                overload: OverloadPolicy::Block,
                ..EngineConfig::default()
            },
            factory(),
        );
        engine.push_all_sync(full_stream(1));
        let blocked = engine.stats().blocked_pushes;
        (engine.finish(&pool), blocked)
    };
    let (unbounded, unbounded_blocked) = run(None);
    let (tiny, tiny_blocked) = run(Some(2));
    // Blocking drains inline instead of dropping: the *entire report*
    // (not just per-job results) is bit-for-bit the unbounded engine's —
    // the scheduling-dependent blocked-push count lives in EngineStats,
    // outside the determinism-checked report.
    assert_eq!(tiny, unbounded);
    assert!(tiny_blocked > 0, "capacity 2 never hit?");
    assert_eq!(tiny.overload.lost_events(), 0);
    assert_eq!(unbounded_blocked, 0);
}
