//! Online replay of a job trace under the paper's evaluation protocol.

use nurd_data::{Checkpoint, FinishedTask, JobContext, JobTrace, OnlinePredictor, RunningTask};

use crate::Confusion;

/// Replay parameters (paper defaults: p90 threshold, 4% warmup).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Latency quantile defining `τ_stra` (the paper uses p90 and reports
    /// robustness from p70–p95).
    pub quantile: f64,
    /// Fraction of tasks that must finish before prediction starts — the
    /// initial training set of §6.
    pub warmup_fraction: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            quantile: 0.9,
            warmup_fraction: 0.04,
        }
    }
}

/// Everything measured during one job's replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The straggler threshold `τ_stra` used.
    pub threshold: f64,
    /// For each task, the checkpoint ordinal at which it was flagged
    /// (`None` = never flagged).
    pub flagged_at: Vec<Option<usize>>,
    /// End-of-job confusion counts.
    pub confusion: Confusion,
    /// F1 of the *cumulative* flagged set after each checkpoint — the
    /// series behind Figures 2 and 3.
    pub f1_timeline: Vec<f64>,
    /// Checkpoint ordinal at which prediction started (warmup).
    pub warmup_checkpoint: usize,
}

impl nurd_codec::Checkpointable for ReplayOutcome {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_f64(self.threshold);
        self.flagged_at.encode(enc);
        self.confusion.encode(enc);
        self.f1_timeline.encode(enc);
        enc.put_usize(self.warmup_checkpoint);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(ReplayOutcome {
            threshold: dec.take_f64()?,
            flagged_at: nurd_codec::Checkpointable::decode(dec)?,
            confusion: nurd_codec::Checkpointable::decode(dec)?,
            f1_timeline: nurd_codec::Checkpointable::decode(dec)?,
            warmup_checkpoint: dec.take_usize()?,
        })
    }
}

impl ReplayOutcome {
    /// Task ids flagged as stragglers.
    #[must_use]
    pub fn flagged_ids(&self) -> Vec<usize> {
        self.flagged_at
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|_| i))
            .collect()
    }

    /// F1 values sampled at `points` normalized-time positions (Figures 2–3
    /// use ten deciles).
    ///
    /// # Panics
    ///
    /// Panics if `points == 0`.
    #[must_use]
    pub fn f1_at_normalized_times(&self, points: usize) -> Vec<f64> {
        assert!(points > 0, "need at least one sample point");
        let t = self.f1_timeline.len();
        (1..=points)
            .map(|p| {
                let idx = ((p as f64 / points as f64) * t as f64).ceil() as usize;
                self.f1_timeline[idx.clamp(1, t) - 1]
            })
            .collect()
    }
}

/// Replays one job against a predictor.
///
/// Protocol (§7.1 of the paper):
/// 1. `τ_stra` is the `quantile` latency of the job; prediction begins at
///    the first checkpoint where `warmup_fraction` of tasks have finished.
/// 2. At each checkpoint the predictor sees all finished tasks (features +
///    latencies) and all still-running, not-yet-flagged tasks (features
///    only).
/// 3. A task predicted to straggle is flagged permanently and disappears
///    from later checkpoints; a task predicted negative is re-evaluated at
///    the next checkpoint unless it finished in between.
/// 4. **Revelation rule**: once the clock passes `τ_stra`, every
///    still-running task has *revealed itself* as a straggler (`y > τ` is
///    observable) — the paper's goal is prediction "before stragglers
///    reveal themselves with long run times" (§1). Revealed tasks stop
///    being predictable; a method that never flagged them pre-revelation
///    takes the false negative. Without this rule, any method that flags
///    all survivors at the first post-τ checkpoint collects free true
///    positives with zero false-positive risk, and end-of-job F1 stops
///    measuring prediction at all.
///
/// # Panics
///
/// Panics if the config quantile or warmup fraction is outside `[0, 1]`
/// (propagated from [`JobTrace::straggler_threshold`]).
pub fn replay_job(
    job: &JobTrace,
    predictor: &mut dyn OnlinePredictor,
    config: &ReplayConfig,
) -> ReplayOutcome {
    let threshold = job.straggler_threshold(config.quantile);
    let warmup = job.warmup_checkpoint(config.warmup_fraction);
    let n = job.task_count();

    let ctx = JobContext {
        threshold,
        task_count: n,
        feature_dim: job.feature_dim(),
        oracle: job,
    };
    predictor.begin_job(&ctx);

    let mut flagged_at: Vec<Option<usize>> = vec![None; n];
    let truth: Vec<bool> = job
        .tasks()
        .iter()
        .map(|t| t.latency() >= threshold)
        .collect();
    let checkpoint_count = job.checkpoint_count();
    for (k, &time) in job.checkpoint_times().iter().enumerate() {
        // Prediction is only meaningful before stragglers reveal themselves
        // (revelation rule, see the function docs).
        if k >= warmup && time < threshold {
            let mut finished = Vec::new();
            let mut running = Vec::new();
            for task in job.tasks() {
                if flagged_at[task.id()].is_some() {
                    continue;
                }
                if task.latency() <= time {
                    finished.push(FinishedTask {
                        id: task.id(),
                        features: task.snapshot(k),
                        latency: task.latency(),
                    });
                } else {
                    running.push(RunningTask {
                        id: task.id(),
                        features: task.snapshot(k),
                    });
                }
            }
            let running_ids: Vec<usize> = running.iter().map(|r| r.id).collect();
            let checkpoint = Checkpoint {
                ordinal: k,
                time,
                finished,
                running,
            };
            for id in predictor.predict(&checkpoint) {
                // Ignore ids that are not actually running (finished,
                // already flagged, or out of range).
                if running_ids.contains(&id) {
                    flagged_at[id] = Some(k);
                }
            }
        }
    }

    outcome_from_flags(threshold, warmup, checkpoint_count, flagged_at, &truth)
}

/// Scores a finished replay from its per-task flag ordinals and ground
/// truth: end-of-job confusion plus the cumulative-F1 timeline (flags
/// with ordinal `<= k` count toward checkpoint `k`, exactly as they did
/// when [`replay_job`] accumulated the timeline inline).
///
/// This is the **post-hoc** half of the protocol — everything in it is
/// computable once all latencies are known, from data (`flagged_at`) that
/// was collected strictly online. `nurd_serve` relies on that split: its
/// engine records flags as events stream in and calls this at the end,
/// which is what makes an `EngineReport` bit-for-bit comparable to a
/// sequential [`replay_job`] of the same jobs.
///
/// # Panics
///
/// Panics if `flagged_at` and `truth` have different lengths.
#[must_use]
pub fn outcome_from_flags(
    threshold: f64,
    warmup_checkpoint: usize,
    checkpoint_count: usize,
    flagged_at: Vec<Option<usize>>,
    truth: &[bool],
) -> ReplayOutcome {
    assert_eq!(flagged_at.len(), truth.len(), "flags/truth length mismatch");
    let f1_timeline: Vec<f64> = (0..checkpoint_count)
        .map(|k| cumulative_f1_at(&flagged_at, truth, k))
        .collect();

    let mut confusion = Confusion::default();
    for (flag, &is_straggler) in flagged_at.iter().zip(truth) {
        match (flag.is_some(), is_straggler) {
            (true, true) => confusion.true_positives += 1,
            (true, false) => confusion.false_positives += 1,
            (false, true) => confusion.false_negatives += 1,
            (false, false) => confusion.true_negatives += 1,
        }
    }

    ReplayOutcome {
        threshold,
        flagged_at,
        confusion,
        f1_timeline,
        warmup_checkpoint,
    }
}

/// F1 of the flag set as it stood at checkpoint `k` (flags are never
/// unset, so that is exactly the flags with ordinal `<= k`).
fn cumulative_f1_at(flagged_at: &[Option<usize>], truth: &[bool], k: usize) -> f64 {
    let mut c = Confusion::default();
    for (flag, &is_straggler) in flagged_at.iter().zip(truth) {
        let flagged = flag.is_some_and(|o| o <= k);
        match (flagged, is_straggler) {
            (true, true) => c.true_positives += 1,
            (true, false) => c.false_positives += 1,
            (false, true) => c.false_negatives += 1,
            (false, false) => c.true_negatives += 1,
        }
    }
    c.f1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_trace::{SuiteConfig, TraceStyle};

    /// Oracle predictor that reads true latencies from the context — used
    /// only to validate the protocol accounting.
    struct Oracle {
        threshold: f64,
        latencies: Vec<f64>,
    }

    impl Oracle {
        fn new() -> Self {
            Oracle {
                threshold: 0.0,
                latencies: Vec::new(),
            }
        }
    }

    impl OnlinePredictor for Oracle {
        fn name(&self) -> &str {
            "ORACLE"
        }
        fn begin_job(&mut self, ctx: &JobContext<'_>) {
            self.threshold = ctx.threshold;
            self.latencies = ctx.oracle.latencies();
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint
                .running
                .iter()
                .map(|r| r.id)
                .filter(|&id| self.latencies[id] >= self.threshold)
                .collect()
        }
    }

    struct FlagEverything;
    impl OnlinePredictor for FlagEverything {
        fn name(&self) -> &str {
            "ALL"
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint.running.iter().map(|r| r.id).collect()
        }
    }

    struct FlagNothing;
    impl OnlinePredictor for FlagNothing {
        fn name(&self) -> &str {
            "NONE"
        }
        fn predict(&mut self, _checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            Vec::new()
        }
    }

    fn job() -> JobTrace {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(100, 120)
            .with_checkpoints(12)
            .with_seed(21);
        nurd_trace::generate_job(&cfg, 0)
    }

    #[test]
    fn oracle_catches_every_straggler_it_can_see() {
        let job = job();
        let out = replay_job(&job, &mut Oracle::new(), &ReplayConfig::default());
        // Stragglers run long, so all of them are still running at warmup
        // and the oracle flags them all; no false positives by construction.
        assert_eq!(out.confusion.false_positives, 0);
        assert_eq!(out.confusion.false_negatives, 0);
        assert_eq!(out.confusion.f1(), 1.0);
    }

    #[test]
    fn flag_nothing_yields_zero_f1_and_full_fnr() {
        let job = job();
        let out = replay_job(&job, &mut FlagNothing, &ReplayConfig::default());
        assert_eq!(out.confusion.true_positives, 0);
        assert_eq!(out.confusion.false_positives, 0);
        assert_eq!(out.confusion.fnr(), 1.0);
        assert!(out.f1_timeline.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn flag_everything_has_perfect_tpr_terrible_precision() {
        let job = job();
        let out = replay_job(&job, &mut FlagEverything, &ReplayConfig::default());
        assert_eq!(out.confusion.false_negatives, 0);
        assert!(out.confusion.fpr() > 0.5);
        assert!(out.confusion.f1() < 0.5);
    }

    #[test]
    fn conservation_of_tasks() {
        let job = job();
        for predictor in [
            &mut FlagEverything as &mut dyn OnlinePredictor,
            &mut FlagNothing,
        ] {
            let out = replay_job(&job, predictor, &ReplayConfig::default());
            assert_eq!(out.confusion.total(), job.task_count());
        }
    }

    #[test]
    fn flagged_tasks_stay_flagged() {
        let job = job();
        let out = replay_job(&job, &mut FlagEverything, &ReplayConfig::default());
        // Every task flagged exactly once, at or after warmup.
        for flag in out.flagged_at.iter().flatten() {
            assert!(*flag >= out.warmup_checkpoint);
        }
        // Tasks finished before warmup are unflaggable.
        let warmup_time = job.checkpoint_times()[out.warmup_checkpoint];
        for (task, flag) in job.tasks().iter().zip(&out.flagged_at) {
            if task.latency() <= warmup_time && flag.is_some() {
                panic!("task finished before warmup got flagged");
            }
        }
    }

    #[test]
    fn timeline_is_monotone_for_oracle() {
        let job = job();
        let out = replay_job(&job, &mut Oracle::new(), &ReplayConfig::default());
        for w in out.f1_timeline.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "oracle F1 should only improve");
        }
    }

    #[test]
    fn decile_sampling_has_ten_points() {
        let job = job();
        let out = replay_job(&job, &mut Oracle::new(), &ReplayConfig::default());
        let deciles = out.f1_at_normalized_times(10);
        assert_eq!(deciles.len(), 10);
        assert_eq!(*deciles.last().unwrap(), *out.f1_timeline.last().unwrap());
    }

    #[test]
    fn higher_warmup_fraction_delays_prediction() {
        let job = job();
        let early = replay_job(&job, &mut Oracle::new(), &ReplayConfig::default());
        let late = replay_job(
            &job,
            &mut Oracle::new(),
            &ReplayConfig {
                warmup_fraction: 0.5,
                ..ReplayConfig::default()
            },
        );
        assert!(late.warmup_checkpoint >= early.warmup_checkpoint);
    }

    #[test]
    fn out_of_range_predictions_are_ignored() {
        struct Wild;
        impl OnlinePredictor for Wild {
            fn name(&self) -> &str {
                "WILD"
            }
            fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
                // Claim finished tasks and nonsense ids; none should count.
                checkpoint
                    .finished
                    .iter()
                    .map(|f| f.id)
                    .chain([usize::MAX >> 1])
                    .collect()
            }
        }
        let job = job();
        let out = replay_job(&job, &mut Wild, &ReplayConfig::default());
        assert!(out.flagged_ids().is_empty());
    }
}
