//! Straggler-mitigation schedulers (Algorithms 2 and 3 of the paper).
//!
//! Both schedulers terminate a task the moment the predictor flags it and
//! relaunch it on another machine with a fresh duration sampled from the
//! job's empirical latency distribution — exactly the paper's §7.3 protocol
//! ("the new completion time for a rescheduled task is randomly sampled
//! from the existing execution times"). With unlimited machines the relaunch
//! is immediate (Algorithm 2); with a bounded pool the relaunch waits for a
//! free machine (Algorithm 3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nurd_data::JobTrace;

use crate::ReplayOutcome;

/// Scheduler parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Machine pool size; `None` = at least as many machines as tasks
    /// (Algorithm 2).
    pub machines: Option<usize>,
    /// Seed for relaunch-duration resampling.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            machines: None,
            seed: 0xACE5,
        }
    }
}

/// Completion times with and without straggler mitigation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JctOutcome {
    /// Job completion time with no intervention.
    pub baseline: f64,
    /// Job completion time when flagged tasks are relaunched.
    pub mitigated: f64,
}

impl JctOutcome {
    /// Percent reduction in job completion time (positive = mitigation
    /// helped), the y-axis of Figures 4–9.
    #[must_use]
    pub fn reduction_percent(&self) -> f64 {
        if self.baseline <= 0.0 {
            return 0.0;
        }
        100.0 * (self.baseline - self.mitigated) / self.baseline
    }
}

/// Work item queued on the machine pool.
#[derive(Debug, Clone, Copy)]
enum Work {
    /// Initial run of a task (index into the job's task list).
    Initial(usize),
    /// Relaunch with a resampled duration, ready at the given time.
    Relaunch { ready: f64, duration: f64 },
}

/// Simulates the job with and without mitigation and reports both
/// completion times.
///
/// `outcome.flagged_at` supplies, for every flagged task, the checkpoint at
/// which it was flagged; the flag takes effect at that checkpoint's
/// *task-local elapsed time* (a task started later is flagged
/// correspondingly later in wall-clock time).
///
/// # Panics
///
/// Panics if `config.machines == Some(0)` or if `outcome` does not belong
/// to `job` (length mismatch).
#[must_use]
pub fn simulate_jct(
    job: &JobTrace,
    outcome: &ReplayOutcome,
    config: &SchedulerConfig,
) -> JctOutcome {
    assert_eq!(
        outcome.flagged_at.len(),
        job.task_count(),
        "replay outcome does not match job"
    );
    let machines = config.machines.unwrap_or(job.task_count()).max(1);
    assert!(config.machines != Some(0), "machine pool must be non-empty");

    let mut sorted_latencies = job.latencies();
    sorted_latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mut rng = StdRng::seed_from_u64(config.seed ^ job.job_id());

    // Baseline: nobody is flagged.
    let baseline = run_pool(
        job,
        &vec![None; job.task_count()],
        machines,
        &mut |_rng, _now| 0.0,
    );

    // Mitigated: flagged tasks terminate at their flag time and relaunch
    // with a duration resampled from the *observed* execution times — the
    // durations of tasks that have already finished at relaunch time (§7.3:
    // "randomly sampled from the existing execution times"). Stragglers
    // have not finished yet when relaunches happen, so the pool is the
    // non-straggler body.
    let mut sample = |rng: &mut StdRng, now: f64| {
        let observed = sorted_latencies.partition_point(|&l| l <= now);
        if observed == 0 {
            sorted_latencies[0]
        } else {
            sorted_latencies[rng.gen_range(0..observed)]
        }
    };
    let mitigated = run_pool_with_rng(job, &outcome.flagged_at, machines, &mut rng, &mut sample);

    JctOutcome {
        baseline,
        mitigated,
    }
}

fn run_pool(
    job: &JobTrace,
    flagged_at: &[Option<usize>],
    machines: usize,
    sample: &mut dyn FnMut(&mut StdRng, f64) -> f64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(0);
    run_pool_with_rng(job, flagged_at, machines, &mut rng, sample)
}

/// Event-driven list scheduler: `machines` identical machines, initial tasks
/// dispatched FCFS, relaunches prioritized once ready.
fn run_pool_with_rng(
    job: &JobTrace,
    flagged_at: &[Option<usize>],
    machines: usize,
    rng: &mut StdRng,
    sample: &mut dyn FnMut(&mut StdRng, f64) -> f64,
) -> f64 {
    let times = job.checkpoint_times();
    // Machine pool as a min-heap of free times.
    let mut free: BinaryHeap<Reverse<OrderedF64>> =
        (0..machines).map(|_| Reverse(OrderedF64(0.0))).collect();
    let mut initial: std::collections::VecDeque<usize> = (0..job.task_count()).collect();
    let mut relaunches: BinaryHeap<Reverse<(OrderedF64, OrderedF64)>> = BinaryHeap::new();
    let mut makespan = 0.0f64;

    loop {
        let Some(&Reverse(OrderedF64(free_at))) = free.peek() else {
            unreachable!("machine pool is never empty");
        };

        // Prefer a relaunch that is already waiting; otherwise the next
        // initial task; otherwise idle until the earliest relaunch is ready.
        let work = if let Some(&Reverse((OrderedF64(ready), _))) = relaunches.peek() {
            if ready <= free_at || initial.is_empty() {
                let Reverse((OrderedF64(ready), OrderedF64(duration))) =
                    relaunches.pop().expect("peeked");
                Work::Relaunch { ready, duration }
            } else {
                Work::Initial(initial.pop_front().expect("checked non-empty"))
            }
        } else if let Some(task) = initial.pop_front() {
            Work::Initial(task)
        } else {
            break; // no work left
        };
        free.pop();

        match work {
            Work::Initial(task) => {
                let start = free_at;
                let latency = job.tasks()[task].latency();
                match flagged_at[task] {
                    // Flag takes effect at the checkpoint's task-local time,
                    // capped at the task's own duration (a flag cannot land
                    // after the task would have finished).
                    Some(ckpt) => {
                        let elapsed = times[ckpt].min(latency);
                        let kill_time = start + elapsed;
                        free.push(Reverse(OrderedF64(kill_time)));
                        let duration = sample(rng, kill_time);
                        relaunches.push(Reverse((OrderedF64(kill_time), OrderedF64(duration))));
                        makespan = makespan.max(kill_time);
                    }
                    None => {
                        let end = start + latency;
                        free.push(Reverse(OrderedF64(end)));
                        makespan = makespan.max(end);
                    }
                }
            }
            Work::Relaunch { ready, duration } => {
                let start = free_at.max(ready);
                let end = start + duration;
                free.push(Reverse(OrderedF64(end)));
                makespan = makespan.max(end);
            }
        }
    }
    makespan
}

/// Total order wrapper for finite f64 event times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{replay_job, ReplayConfig};
    use nurd_data::{Checkpoint, JobContext, OnlinePredictor};
    use nurd_trace::{SuiteConfig, TraceStyle};
    use proptest::prelude::*;

    fn job() -> JobTrace {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(120, 150)
            .with_checkpoints(15)
            .with_seed(33);
        nurd_trace::generate_job(&cfg, 0)
    }

    struct Oracle {
        threshold: f64,
        latencies: Vec<f64>,
    }
    impl OnlinePredictor for Oracle {
        fn name(&self) -> &str {
            "ORACLE"
        }
        fn begin_job(&mut self, ctx: &JobContext<'_>) {
            self.threshold = ctx.threshold;
            self.latencies = ctx.oracle.latencies();
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint
                .running
                .iter()
                .map(|r| r.id)
                .filter(|&id| self.latencies[id] >= self.threshold)
                .collect()
        }
    }

    struct FlagNothing;
    impl OnlinePredictor for FlagNothing {
        fn name(&self) -> &str {
            "NONE"
        }
        fn predict(&mut self, _c: &Checkpoint<'_>) -> Vec<usize> {
            Vec::new()
        }
    }

    #[test]
    fn unlimited_baseline_is_max_latency() {
        let job = job();
        let out = replay_job(&job, &mut FlagNothing, &ReplayConfig::default());
        let jct = simulate_jct(&job, &out, &SchedulerConfig::default());
        assert!((jct.baseline - job.max_latency()).abs() < 1e-9);
        assert_eq!(jct.baseline, jct.mitigated);
        assert_eq!(jct.reduction_percent(), 0.0);
    }

    #[test]
    fn oracle_mitigation_reduces_jct_with_unlimited_machines() {
        let job = job();
        let out = replay_job(
            &job,
            &mut Oracle {
                threshold: 0.0,
                latencies: vec![],
            },
            &ReplayConfig::default(),
        );
        let jct = simulate_jct(&job, &out, &SchedulerConfig::default());
        assert!(
            jct.mitigated < jct.baseline,
            "oracle mitigation should shorten the job: {jct:?}"
        );
        assert!(jct.reduction_percent() > 0.0);
    }

    #[test]
    fn fewer_machines_increase_baseline() {
        let job = job();
        let out = replay_job(&job, &mut FlagNothing, &ReplayConfig::default());
        let unlimited = simulate_jct(&job, &out, &SchedulerConfig::default());
        let constrained = simulate_jct(
            &job,
            &out,
            &SchedulerConfig {
                machines: Some(20),
                ..SchedulerConfig::default()
            },
        );
        assert!(constrained.baseline > unlimited.baseline);
    }

    #[test]
    fn machine_pool_capacity_is_respected() {
        // With 1 machine, baseline = sum of latencies.
        let job = job();
        let out = replay_job(&job, &mut FlagNothing, &ReplayConfig::default());
        let jct = simulate_jct(
            &job,
            &out,
            &SchedulerConfig {
                machines: Some(1),
                ..SchedulerConfig::default()
            },
        );
        let total: f64 = job.latencies().iter().sum();
        assert!((jct.baseline - total).abs() < 1e-6);
    }

    #[test]
    fn deterministic_under_seed() {
        let job = job();
        let out = replay_job(
            &job,
            &mut Oracle {
                threshold: 0.0,
                latencies: vec![],
            },
            &ReplayConfig::default(),
        );
        let a = simulate_jct(&job, &out, &SchedulerConfig::default());
        let b = simulate_jct(&job, &out, &SchedulerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "machine pool must be non-empty")]
    fn zero_machines_rejected() {
        let job = job();
        let out = replay_job(&job, &mut FlagNothing, &ReplayConfig::default());
        let _ = simulate_jct(
            &job,
            &out,
            &SchedulerConfig {
                machines: Some(0),
                ..SchedulerConfig::default()
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// More machines never lengthen the baseline (list scheduling on
        /// identical machines is monotone in pool size here because tasks
        /// are dispatched FCFS from a fixed queue).
        #[test]
        fn prop_baseline_monotone_in_machines(m in 1usize..60) {
            let job = job();
            let out = replay_job(&job, &mut FlagNothing, &ReplayConfig::default());
            let small = simulate_jct(&job, &out, &SchedulerConfig {
                machines: Some(m), ..SchedulerConfig::default()
            });
            let big = simulate_jct(&job, &out, &SchedulerConfig {
                machines: Some(m + 30), ..SchedulerConfig::default()
            });
            prop_assert!(big.baseline <= small.baseline + 1e-9);
        }

        /// Mitigated makespan is bounded below by the kill times plus zero
        /// work — sanity: reduction can never reach 100%.
        #[test]
        fn prop_reduction_bounded(m in 10usize..200) {
            let job = job();
            let out = replay_job(&job, &mut Oracle { threshold: 0.0, latencies: vec![] },
                &ReplayConfig::default());
            let jct = simulate_jct(&job, &out, &SchedulerConfig {
                machines: Some(m), ..SchedulerConfig::default()
            });
            prop_assert!(jct.reduction_percent() < 100.0);
            prop_assert!(jct.mitigated > 0.0);
        }
    }
}
