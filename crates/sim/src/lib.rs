//! Trace-replay simulator and schedulers for the NURD reproduction.
//!
//! This crate implements the paper's evaluation machinery:
//!
//! * [`replay_job`] — streams a [`nurd_data::JobTrace`] checkpoint by
//!   checkpoint into an [`nurd_data::OnlinePredictor`] under the protocol of
//!   §7.1 (predict from the 4% warmup point; a task flagged as a straggler
//!   is never evaluated again) and scores the result;
//! * [`Confusion`] / [`MethodSummary`] — TPR/FPR/FNR/F1 accounting,
//!   macro-averaged over jobs as in Table 3;
//! * [`simulate_jct`] — the straggler-mitigation schedulers of §5
//!   (Algorithm 2 for unlimited machines, Algorithm 3 for a bounded pool)
//!   with relaunch durations resampled from the job's empirical latencies,
//!   yielding the job-completion-time reductions of Figures 4–9;
//! * [`execute_actions`] — deterministic execution of a serving engine's
//!   committed [`nurd_data::ActionRecord`] log (clone races, quarantine
//!   relaunches, wasted-work ledger), closing the predict→mitigate loop.
//!
//! # Example
//!
//! ```
//! use nurd_data::{Checkpoint, OnlinePredictor};
//! use nurd_sim::{replay_job, ReplayConfig};
//! use nurd_trace::{SuiteConfig, TraceStyle};
//!
//! struct Never;
//! impl OnlinePredictor for Never {
//!     fn name(&self) -> &str { "NEVER" }
//!     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
//! }
//!
//! let cfg = SuiteConfig::new(TraceStyle::Google)
//!     .with_jobs(1).with_task_range(50, 60).with_checkpoints(10);
//! let job = nurd_trace::generate_job(&cfg, 0);
//! let outcome = replay_job(&job, &mut Never, &ReplayConfig::default());
//! assert_eq!(outcome.confusion.true_positives, 0);
//! ```

mod metrics;
mod mitigation;
mod replay;
mod scheduler;

pub use metrics::{Confusion, MethodSummary};
pub use mitigation::{
    execute_actions, summarize_mitigation, MitigationOutcome, MitigationSimConfig,
    MitigationSummary, TaskCompletion,
};
pub use replay::{outcome_from_flags, replay_job, ReplayConfig, ReplayOutcome};
pub use scheduler::{simulate_jct, JctOutcome, SchedulerConfig};
