//! Confusion-matrix accounting for straggler prediction.

/// Binary confusion counts for one job's replay (positive class =
/// straggler, as in the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Flagged tasks that truly straggled.
    pub true_positives: usize,
    /// Flagged tasks that finished below the threshold.
    pub false_positives: usize,
    /// Stragglers that were never flagged.
    pub false_negatives: usize,
    /// Non-stragglers never flagged.
    pub true_negatives: usize,
}

impl nurd_codec::Checkpointable for Confusion {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_usize(self.true_positives);
        enc.put_usize(self.false_positives);
        enc.put_usize(self.false_negatives);
        enc.put_usize(self.true_negatives);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(Confusion {
            true_positives: dec.take_usize()?,
            false_positives: dec.take_usize()?,
            false_negatives: dec.take_usize()?,
            true_negatives: dec.take_usize()?,
        })
    }
}

impl Confusion {
    /// Total tasks accounted for.
    #[must_use]
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// True positive rate (recall); `0.0` when there are no positives.
    #[must_use]
    pub fn tpr(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// False positive rate; `0.0` when there are no negatives.
    #[must_use]
    pub fn fpr(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// False negative rate; `0.0` when there are no positives.
    #[must_use]
    pub fn fnr(&self) -> f64 {
        ratio(
            self.false_negatives,
            self.true_positives + self.false_negatives,
        )
    }

    /// Precision; `0.0` when nothing was flagged.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// F1 score; `0.0` when there are no true positives.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulates another job's counts (micro aggregation).
    pub fn absorb(&mut self, other: &Confusion) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_negatives += other.true_negatives;
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Macro-averaged metrics over many jobs — the row format of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodSummary {
    /// Mean per-job true positive rate.
    pub tpr: f64,
    /// Mean per-job false positive rate.
    pub fpr: f64,
    /// Mean per-job false negative rate.
    pub fnr: f64,
    /// Mean per-job F1.
    pub f1: f64,
    /// Number of jobs averaged.
    pub jobs: usize,
}

impl MethodSummary {
    /// Averages per-job confusions (macro average, matching the paper's
    /// "averaged results over all jobs").
    ///
    /// Returns all-zero metrics for an empty slice.
    #[must_use]
    pub fn from_confusions(confusions: &[Confusion]) -> Self {
        if confusions.is_empty() {
            return MethodSummary {
                tpr: 0.0,
                fpr: 0.0,
                fnr: 0.0,
                f1: 0.0,
                jobs: 0,
            };
        }
        let n = confusions.len() as f64;
        MethodSummary {
            tpr: confusions.iter().map(Confusion::tpr).sum::<f64>() / n,
            fpr: confusions.iter().map(Confusion::fpr).sum::<f64>() / n,
            fnr: confusions.iter().map(Confusion::fnr).sum::<f64>() / n,
            f1: confusions.iter().map(Confusion::f1).sum::<f64>() / n,
            jobs: confusions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction() {
        let c = Confusion {
            true_positives: 10,
            false_positives: 0,
            false_negatives: 0,
            true_negatives: 90,
        };
        assert_eq!(c.tpr(), 1.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.total(), 100);
    }

    #[test]
    fn known_confusion_values() {
        // tp=6, fp=4, fn=4, tn=86: precision 0.6, recall 0.6, f1 0.6.
        let c = Confusion {
            true_positives: 6,
            false_positives: 4,
            false_negatives: 4,
            true_negatives: 86,
        };
        assert!((c.precision() - 0.6).abs() < 1e-12);
        assert!((c.tpr() - 0.6).abs() < 1e-12);
        assert!((c.f1() - 0.6).abs() < 1e-12);
        assert!((c.fpr() - 4.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rates_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = Confusion {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
            true_negatives: 4,
        };
        a.absorb(&a.clone());
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn summary_macro_averages() {
        let jobs = [
            Confusion {
                true_positives: 10,
                false_positives: 0,
                false_negatives: 0,
                true_negatives: 90,
            },
            Confusion {
                true_positives: 0,
                false_positives: 0,
                false_negatives: 10,
                true_negatives: 90,
            },
        ];
        let s = MethodSummary::from_confusions(&jobs);
        assert!((s.tpr - 0.5).abs() < 1e-12);
        assert!((s.f1 - 0.5).abs() < 1e-12);
        assert_eq!(s.jobs, 2);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = MethodSummary::from_confusions(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.f1, 0.0);
    }

    proptest! {
        /// TPR + FNR = 1 whenever there is at least one positive.
        #[test]
        fn prop_tpr_fnr_complement(tp in 0usize..50, fp in 0usize..50,
                                   fne in 0usize..50, tn in 0usize..50) {
            let c = Confusion {
                true_positives: tp,
                false_positives: fp,
                false_negatives: fne,
                true_negatives: tn,
            };
            if tp + fne > 0 {
                prop_assert!((c.tpr() + c.fnr() - 1.0).abs() < 1e-12);
            }
            prop_assert!((0.0..=1.0).contains(&c.f1()));
            prop_assert!((0.0..=1.0).contains(&c.fpr()));
        }
    }
}
