//! Deterministic execution of mitigation action logs against ground truth.
//!
//! [`execute_actions`] takes a job's trace (true latencies), the action log
//! the serving engine committed for it, and replays what a fleet scheduler
//! would have done: clones race their originals and finish at
//! `min(original, clone)` latency, quarantines kill-and-relaunch, and every
//! unit of machine time spent on a losing copy is charged to a wasted-work
//! ledger. The output is a completion ledger (**exactly one completion per
//! task** — the invariant the property suite pins), end-to-end job
//! completion time versus the unmitigated baseline, and catch-rate
//! accounting.
//!
//! # Determinism
//!
//! Relaunch/clone durations are sampled the same way the rescue scheduler
//! samples them — uniformly from the latencies already *observed finished*
//! at the action's barrier time — but indexed by a [SplitMix64] hash of
//! `(seed, job, task)` instead of a sequential RNG, so the result is
//! independent of action-log ordering and of how many other jobs the fleet
//! ran. Same seed + same log ⇒ bit-identical outcome.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use nurd_data::{ActionRecord, JobTrace, MitigationAction};

/// Knobs for [`execute_actions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationSimConfig {
    /// Seed for clone/relaunch duration sampling. Part of the replay
    /// identity: same seed + same action log ⇒ bit-identical outcome.
    pub seed: u64,
    /// Node-correlated resampling: when the job carries a node placement
    /// ([`JobTrace::node_placement`]), a copy's duration is drawn only
    /// from latencies of tasks on **other** nodes — the scheduler lands
    /// the clone/relaunch on a different machine, so a sick node's slow
    /// latencies never contaminate its own replacement draws. This is
    /// what makes quarantining a sick machine economically measurable.
    /// `false` (the default) keeps the original fleet-wide pool and is
    /// bit-identical to the pre-node-model simulator; jobs without
    /// placement always use the fleet-wide pool.
    pub node_resample: bool,
}

impl Default for MitigationSimConfig {
    fn default() -> Self {
        MitigationSimConfig {
            seed: 0x4d17_16a7,
            node_resample: false,
        }
    }
}

/// One task's final completion in the mitigated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCompletion {
    /// Task id.
    pub task: usize,
    /// Completion time in the mitigated run.
    pub time: f64,
    /// Whether a mitigation copy (clone or relaunch) produced the final
    /// completion, rather than the original execution.
    pub via_mitigation: bool,
}

/// Everything [`execute_actions`] measured for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationOutcome {
    /// Job id the outcome belongs to.
    pub job: u64,
    /// Job completion time with no mitigation (max original latency).
    pub jct_baseline: f64,
    /// Job completion time after executing the action log.
    pub jct_mitigated: f64,
    /// Machine time charged to losing copies (clone runtime, killed
    /// originals' progress).
    pub wasted_work: f64,
    /// Total machine time consumed in the mitigated run (useful + wasted).
    pub total_work: f64,
    /// Exactly one entry per task, task-id order — the completion ledger.
    pub completions: Vec<TaskCompletion>,
    /// Clone actions that actually started (target still running).
    pub clones_issued: usize,
    /// Clones that finished before their original.
    pub clones_won: usize,
    /// Clones whose original won the race — pure waste.
    pub clones_wasted: usize,
    /// Quarantine actions that actually started.
    pub quarantines: usize,
    /// Actions targeting tasks already finished (or already actioned /
    /// out of range) — executed as no-ops at zero cost.
    pub void_actions: usize,
    /// Tasks whose true latency is at/above the job threshold.
    pub true_stragglers: usize,
    /// True stragglers that received a non-void action before finishing.
    pub caught_stragglers: usize,
}

impl MitigationOutcome {
    /// Wasted machine time as a fraction of all machine time consumed.
    #[must_use]
    pub fn wasted_fraction(&self) -> f64 {
        if self.total_work > 0.0 {
            self.wasted_work / self.total_work
        } else {
            0.0
        }
    }

    /// JCT improvement over the unmitigated baseline, in percent
    /// (positive = mitigation helped).
    #[must_use]
    pub fn jct_reduction_percent(&self) -> f64 {
        if self.jct_baseline > 0.0 {
            (self.jct_baseline - self.jct_mitigated) / self.jct_baseline * 100.0
        } else {
            0.0
        }
    }

    /// Fraction of true stragglers that were actioned before finishing
    /// (`1.0` when the job has none).
    #[must_use]
    pub fn catch_rate(&self) -> f64 {
        if self.true_stragglers > 0 {
            self.caught_stragglers as f64 / self.true_stragglers as f64
        } else {
            1.0
        }
    }
}

/// Fleet-level aggregation of per-job [`MitigationOutcome`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MitigationSummary {
    /// Number of jobs aggregated.
    pub jobs: usize,
    /// Unweighted mean of per-job JCT reduction percentages.
    pub mean_jct_reduction_percent: f64,
    /// Fleet-total wasted work over fleet-total work.
    pub wasted_fraction: f64,
    /// Fleet-total caught stragglers over fleet-total true stragglers
    /// (`1.0` when the fleet has none).
    pub catch_rate: f64,
    /// Sum of per-job clone counts.
    pub clones_issued: usize,
    /// Sum of per-job winning clones.
    pub clones_won: usize,
    /// Sum of per-job wasted clones.
    pub clones_wasted: usize,
    /// Sum of per-job quarantines.
    pub quarantines: usize,
}

/// Aggregates per-job outcomes into a [`MitigationSummary`].
#[must_use]
pub fn summarize_mitigation(outcomes: &[MitigationOutcome]) -> MitigationSummary {
    if outcomes.is_empty() {
        return MitigationSummary::default();
    }
    let total_work: f64 = outcomes.iter().map(|o| o.total_work).sum();
    let wasted: f64 = outcomes.iter().map(|o| o.wasted_work).sum();
    let stragglers: usize = outcomes.iter().map(|o| o.true_stragglers).sum();
    let caught: usize = outcomes.iter().map(|o| o.caught_stragglers).sum();
    MitigationSummary {
        jobs: outcomes.len(),
        mean_jct_reduction_percent: outcomes
            .iter()
            .map(MitigationOutcome::jct_reduction_percent)
            .sum::<f64>()
            / outcomes.len() as f64,
        wasted_fraction: if total_work > 0.0 {
            wasted / total_work
        } else {
            0.0
        },
        catch_rate: if stragglers > 0 {
            caught as f64 / stragglers as f64
        } else {
            1.0
        },
        clones_issued: outcomes.iter().map(|o| o.clones_issued).sum(),
        clones_won: outcomes.iter().map(|o| o.clones_won).sum(),
        clones_wasted: outcomes.iter().map(|o| o.clones_wasted).sum(),
        quarantines: outcomes.iter().map(|o| o.quarantines).sum(),
    }
}

/// SplitMix64 finalizer — the same mix the serving engine uses to place
/// jobs on shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Samples a replacement-copy duration for `task` actioned at time `now`:
/// uniform over the latencies already observed finished (the scheduler's
/// relaunch idiom), indexed by hash so the draw is independent of action
/// ordering. Falls back to the fastest task when nothing has finished yet.
fn sample_copy_duration(
    sorted_latencies: &[f64],
    now: f64,
    seed: u64,
    job: u64,
    task: usize,
) -> f64 {
    let observed = sorted_latencies.partition_point(|&l| l <= now);
    if observed == 0 {
        sorted_latencies[0]
    } else {
        let h = splitmix64(seed ^ splitmix64(job) ^ splitmix64(task as u64 + 1));
        sorted_latencies[(h % observed as u64) as usize]
    }
}

/// Executes a job's committed action log against its ground-truth
/// latencies. See the module docs for the cost model; `threshold` is the
/// job's `τ_stra`, used only for catch-rate accounting. Multiple actions
/// on one task keep the first and void the rest, matching the engine's
/// one-action-per-task dedup.
///
/// # Panics
///
/// Panics if the job has no tasks.
#[must_use]
pub fn execute_actions(
    job: &JobTrace,
    threshold: f64,
    actions: &[ActionRecord],
    config: &MitigationSimConfig,
) -> MitigationOutcome {
    let latencies = job.latencies();
    assert!(!latencies.is_empty(), "job must have at least one task");
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);

    // Node-correlated donor pools: per node, the sorted latencies of all
    // *other* nodes' tasks. Empty pools (single-node jobs) fall back to
    // the fleet-wide pool so sampling never panics.
    let placement = if config.node_resample {
        job.node_placement()
    } else {
        None
    };
    let node_pools: std::collections::BTreeMap<u32, Vec<f64>> = placement
        .map(|nodes| {
            let mut pools = std::collections::BTreeMap::new();
            for &node in nodes {
                pools.entry(node).or_insert_with(|| {
                    let mut pool: Vec<f64> = latencies
                        .iter()
                        .zip(nodes)
                        .filter(|(_, &m)| m != node)
                        .map(|(&l, _)| l)
                        .collect();
                    pool.sort_by(f64::total_cmp);
                    pool
                });
            }
            pools
        })
        .unwrap_or_default();
    let pool_for = |task: usize| -> &[f64] {
        placement
            .and_then(|nodes| node_pools.get(&nodes[task]))
            .filter(|pool| !pool.is_empty())
            .map_or(&sorted[..], Vec::as_slice)
    };

    let mut completions: Vec<TaskCompletion> = latencies
        .iter()
        .enumerate()
        .map(|(task, &time)| TaskCompletion {
            task,
            time,
            via_mitigation: false,
        })
        .collect();
    // Machine time per task in the mitigated run; starts as "original runs
    // to its natural latency" and is adjusted as actions execute.
    let mut work: Vec<f64> = latencies.clone();
    let mut wasted_work = 0.0;
    let mut actioned = vec![false; latencies.len()];
    let mut caught = vec![false; latencies.len()];
    let (mut clones_issued, mut clones_won, mut clones_wasted) = (0usize, 0usize, 0usize);
    let (mut quarantines, mut void_actions) = (0usize, 0usize);

    for record in actions {
        let t = record.task;
        let now = record.time;
        if t >= latencies.len() || actioned[t] || latencies[t] <= now {
            // Out of range, already actioned, or the original finished
            // before the copy could start: a no-op at zero cost.
            void_actions += 1;
            continue;
        }
        let original = latencies[t];
        match record.action {
            MitigationAction::Ignore => {
                void_actions += 1;
                continue;
            }
            MitigationAction::Clone => {
                actioned[t] = true;
                clones_issued += 1;
                let duration = sample_copy_duration(pool_for(t), now, config.seed, record.job, t);
                let finish = (now + duration).min(original);
                // Winner and loser both stop at `finish`; the clone's full
                // runtime is the speculative cost, win or lose.
                let clone_runtime = finish - now;
                wasted_work += clone_runtime;
                work[t] = finish + clone_runtime;
                if finish < original {
                    clones_won += 1;
                } else {
                    clones_wasted += 1;
                }
                completions[t] = TaskCompletion {
                    task: t,
                    time: finish,
                    via_mitigation: finish < original,
                };
            }
            MitigationAction::Quarantine => {
                actioned[t] = true;
                quarantines += 1;
                let duration = sample_copy_duration(pool_for(t), now, config.seed, record.job, t);
                // The original is killed at `now` — everything it ran is
                // wasted — and the relaunch restarts the clock.
                wasted_work += now;
                work[t] = now + duration;
                completions[t] = TaskCompletion {
                    task: t,
                    time: now + duration,
                    via_mitigation: true,
                };
            }
        }
        if original >= threshold {
            caught[t] = true;
        }
    }

    let jct_baseline = latencies.iter().copied().fold(f64::MIN, f64::max);
    let jct_mitigated = completions.iter().map(|c| c.time).fold(f64::MIN, f64::max);
    let true_stragglers = latencies.iter().filter(|&&l| l >= threshold).count();
    MitigationOutcome {
        job: job.job_id(),
        jct_baseline,
        jct_mitigated,
        wasted_work,
        total_work: work.iter().sum(),
        completions,
        clones_issued,
        clones_won,
        clones_wasted,
        quarantines,
        void_actions,
        true_stragglers,
        caught_stragglers: caught.iter().filter(|&&c| c).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::TaskRecord;

    fn job(latencies: &[f64]) -> JobTrace {
        let tasks = latencies
            .iter()
            .enumerate()
            .map(|(id, &l)| TaskRecord::new(id, l, vec![vec![0.0]]))
            .collect();
        JobTrace::new(9, vec!["f".into()], vec![1.0], tasks).unwrap()
    }

    fn record(task: usize, time: f64, action: MitigationAction) -> ActionRecord {
        ActionRecord {
            job: 9,
            ordinal: 0,
            time,
            task,
            action,
        }
    }

    #[test]
    fn empty_log_matches_baseline_with_zero_waste() {
        let j = job(&[1.0, 2.0, 100.0]);
        let out = execute_actions(&j, 50.0, &[], &MitigationSimConfig::default());
        assert_eq!(out.jct_baseline, 100.0);
        assert_eq!(out.jct_mitigated, 100.0);
        assert_eq!(out.wasted_work, 0.0);
        assert_eq!(out.completions.len(), 3);
        assert_eq!(out.true_stragglers, 1);
        assert_eq!(out.caught_stragglers, 0);
    }

    #[test]
    fn winning_clone_cuts_jct_and_charges_clone_runtime() {
        let j = job(&[1.0, 2.0, 3.0, 100.0]);
        let out = execute_actions(
            &j,
            50.0,
            &[record(3, 4.0, MitigationAction::Clone)],
            &MitigationSimConfig::default(),
        );
        // All of {1,2,3} observed at t=4, so the clone takes 1..=3 and
        // finishes at 5..=7 — far ahead of the 100-unit original.
        assert!(out.jct_mitigated <= 7.0 && out.jct_mitigated >= 5.0);
        assert_eq!(out.clones_won, 1);
        assert_eq!(out.clones_wasted, 0);
        assert!((out.wasted_work - (out.jct_mitigated - 4.0)).abs() < 1e-12);
        assert_eq!(out.caught_stragglers, 1);
        assert_eq!(out.jct_baseline, 100.0);
    }

    #[test]
    fn clone_after_finish_is_void_and_free() {
        let j = job(&[1.0, 50.0]);
        let out = execute_actions(
            &j,
            40.0,
            &[record(0, 10.0, MitigationAction::Clone)],
            &MitigationSimConfig::default(),
        );
        assert_eq!(out.void_actions, 1);
        assert_eq!(out.clones_issued, 0);
        assert_eq!(out.wasted_work, 0.0);
        assert_eq!(out.completions[0].time, 1.0);
    }

    #[test]
    fn losing_clone_is_pure_waste_but_never_hurts_jct() {
        // Clone issued so late the original wins the race.
        let j = job(&[95.0, 100.0]);
        let out = execute_actions(
            &j,
            90.0,
            &[record(1, 99.0, MitigationAction::Clone)],
            &MitigationSimConfig::default(),
        );
        assert_eq!(out.jct_mitigated, 100.0);
        assert_eq!(out.clones_wasted, 1);
        assert!((out.wasted_work - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarantine_restarts_the_clock_and_wastes_progress() {
        let j = job(&[2.0, 100.0]);
        let out = execute_actions(
            &j,
            50.0,
            &[record(1, 10.0, MitigationAction::Quarantine)],
            &MitigationSimConfig::default(),
        );
        // Only latency 2.0 observed at t=10 → relaunch takes 2, completing
        // at 12; the killed original's 10 units are wasted.
        assert_eq!(out.completions[1].time, 12.0);
        assert!((out.wasted_work - 10.0).abs() < 1e-12);
        assert_eq!(out.quarantines, 1);
    }

    #[test]
    fn duplicate_actions_keep_first_and_void_rest() {
        let j = job(&[1.0, 100.0]);
        let out = execute_actions(
            &j,
            50.0,
            &[
                record(1, 2.0, MitigationAction::Clone),
                record(1, 3.0, MitigationAction::Quarantine),
            ],
            &MitigationSimConfig::default(),
        );
        assert_eq!(out.clones_issued, 1);
        assert_eq!(out.quarantines, 0);
        assert_eq!(out.void_actions, 1);
    }

    #[test]
    fn execution_is_deterministic_and_order_independent() {
        let j = job(&[1.0, 2.0, 3.0, 80.0, 100.0]);
        let cfg = MitigationSimConfig::default();
        let forward = [
            record(3, 4.0, MitigationAction::Clone),
            record(4, 4.0, MitigationAction::Clone),
        ];
        let reversed = [forward[1], forward[0]];
        let a = execute_actions(&j, 50.0, &forward, &cfg);
        let b = execute_actions(&j, 50.0, &forward, &cfg);
        let c = execute_actions(&j, 50.0, &reversed, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.completions, c.completions);
        assert_eq!(a.wasted_work, c.wasted_work);
    }

    #[test]
    fn clone_only_logs_never_exceed_baseline_jct() {
        // The min(original, clone) rule makes this structural; pin it.
        for seed in 0..20u64 {
            let j = job(&[1.0, 5.0, 9.0, 60.0, 120.0]);
            let actions: Vec<ActionRecord> = (0..5)
                .map(|t| record(t, (t as f64) * 3.0, MitigationAction::Clone))
                .collect();
            let out = execute_actions(
                &j,
                50.0,
                &actions,
                &MitigationSimConfig {
                    seed,
                    node_resample: false,
                },
            );
            assert!(out.jct_mitigated <= out.jct_baseline);
            assert_eq!(out.completions.len(), 5);
        }
    }

    #[test]
    fn node_resample_draws_from_other_nodes_only() {
        // Node 0 is sick: its tasks are 100+. Node 1 is healthy: 1..=3.
        let latencies = [100.0, 120.0, 1.0, 2.0, 3.0];
        let tasks: Vec<TaskRecord> = latencies
            .iter()
            .enumerate()
            .map(|(id, &l)| TaskRecord::new(id, l, vec![vec![0.0]]))
            .collect();
        let j = JobTrace::new(9, vec!["f".into()], vec![1.0], tasks)
            .unwrap()
            .with_nodes(vec![0, 0, 1, 1, 1])
            .unwrap();
        let cfg = MitigationSimConfig {
            node_resample: true,
            ..MitigationSimConfig::default()
        };
        // Quarantine a sick-node task at t=50: the node pool is {1,2,3}
        // only (never the co-located 120.0), so the relaunch always
        // completes by 53.
        let out = execute_actions(
            &j,
            50.0,
            &[record(0, 50.0, MitigationAction::Quarantine)],
            &cfg,
        );
        assert!(out.completions[0].time <= 53.0);
        assert!(out.completions[0].via_mitigation);

        // Disabled, placement is ignored: identical to a placement-free
        // trace (the pre-node-model pool).
        let legacy = execute_actions(
            &j,
            50.0,
            &[record(0, 50.0, MitigationAction::Quarantine)],
            &MitigationSimConfig::default(),
        );
        let bare = execute_actions(
            &j.clone(),
            50.0,
            &[record(0, 50.0, MitigationAction::Quarantine)],
            &MitigationSimConfig::default(),
        );
        assert_eq!(legacy, bare);
    }

    #[test]
    fn node_resample_without_placement_matches_fleet_pool() {
        let j = job(&[1.0, 2.0, 3.0, 100.0]);
        let with = execute_actions(
            &j,
            50.0,
            &[record(3, 4.0, MitigationAction::Clone)],
            &MitigationSimConfig {
                node_resample: true,
                ..MitigationSimConfig::default()
            },
        );
        let without = execute_actions(
            &j,
            50.0,
            &[record(3, 4.0, MitigationAction::Clone)],
            &MitigationSimConfig::default(),
        );
        assert_eq!(with, without);
    }

    #[test]
    fn summary_aggregates_totals() {
        let j = job(&[1.0, 2.0, 3.0, 100.0]);
        let cfg = MitigationSimConfig::default();
        let with = execute_actions(&j, 50.0, &[record(3, 4.0, MitigationAction::Clone)], &cfg);
        let without = execute_actions(&j, 50.0, &[], &cfg);
        let summary = summarize_mitigation(&[with.clone(), without]);
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.clones_issued, 1);
        assert!(summary.mean_jct_reduction_percent > 0.0);
        assert!(summary.wasted_fraction > 0.0 && summary.wasted_fraction < 1.0);
        assert!((summary.catch_rate - 0.5).abs() < 1e-12);
        assert!(summarize_mitigation(&[]).jobs == 0);
    }
}
