//! Property tests of the replay protocol over directly constructed jobs
//! (no generator involved): the protocol must be correct for *any*
//! structurally valid trace, not just the synthetic family.

use proptest::prelude::*;

use nurd_data::{Checkpoint, JobTrace, OnlinePredictor, TaskRecord};
use nurd_sim::{replay_job, ReplayConfig};

/// Builds a valid job from proptest-drawn latencies.
fn job_from_latencies(latencies: &[f64]) -> JobTrace {
    let max = latencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let checkpoints: Vec<f64> = (1..=8).map(|k| max * 1.05 * k as f64 / 8.0).collect();
    let tasks: Vec<TaskRecord> = latencies
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            // One feature correlated with latency, one constant.
            let series: Vec<Vec<f64>> = checkpoints.iter().map(|_| vec![l * 0.1, 1.0]).collect();
            TaskRecord::new(i, l, series)
        })
        .collect();
    JobTrace::new(7, vec!["a".into(), "b".into()], checkpoints, tasks).unwrap()
}

struct FlagAll;
impl OnlinePredictor for FlagAll {
    fn name(&self) -> &str {
        "ALL"
    }
    fn predict(&mut self, c: &Checkpoint<'_>) -> Vec<usize> {
        c.running.iter().map(|r| r.id).collect()
    }
}

struct Never;
impl OnlinePredictor for Never {
    fn name(&self) -> &str {
        "NONE"
    }
    fn predict(&mut self, _c: &Checkpoint<'_>) -> Vec<usize> {
        Vec::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Task conservation and timeline shape hold for arbitrary latencies.
    #[test]
    fn prop_conservation_and_timeline(latencies in proptest::collection::vec(
        0.1..1000.0f64, 5..60)) {
        let job = job_from_latencies(&latencies);
        for p in [&mut FlagAll as &mut dyn OnlinePredictor, &mut Never] {
            let out = replay_job(&job, p, &ReplayConfig::default());
            prop_assert_eq!(out.confusion.total(), job.task_count());
            prop_assert_eq!(out.f1_timeline.len(), job.checkpoint_count());
            prop_assert!(out.f1_timeline.iter().all(|f| (0.0..=1.0).contains(f)));
        }
    }

    /// The never-flagging predictor has zero positives; the all-flagging
    /// one has zero true negatives among tasks running at a prediction
    /// checkpoint.
    #[test]
    fn prop_extreme_predictors_bound_the_confusion(latencies in
        proptest::collection::vec(0.1..1000.0f64, 5..60)) {
        let job = job_from_latencies(&latencies);
        let never = replay_job(&job, &mut Never, &ReplayConfig::default());
        prop_assert_eq!(never.confusion.true_positives, 0);
        prop_assert_eq!(never.confusion.false_positives, 0);
        let all = replay_job(&job, &mut FlagAll, &ReplayConfig::default());
        // FlagAll's flagged set is a superset of any other predictor's
        // possible flags; its FN count is the protocol's floor.
        prop_assert!(all.confusion.false_negatives <= never.confusion.false_negatives);
    }

    /// The cumulative F1 timeline never moves before warmup.
    #[test]
    fn prop_timeline_flat_before_warmup(latencies in proptest::collection::vec(
        0.1..1000.0f64, 10..40)) {
        let job = job_from_latencies(&latencies);
        let out = replay_job(&job, &mut FlagAll, &ReplayConfig::default());
        for k in 0..out.warmup_checkpoint.min(out.f1_timeline.len()) {
            prop_assert_eq!(out.f1_timeline[k], 0.0);
        }
    }

    /// Quantile monotonicity of the threshold wiring: a stricter quantile
    /// yields a no-smaller threshold and a no-larger true straggler set.
    #[test]
    fn prop_quantile_monotonicity(latencies in proptest::collection::vec(
        0.1..1000.0f64, 10..50), q1 in 0.5..0.95f64, q2 in 0.5..0.95f64) {
        let job = job_from_latencies(&latencies);
        let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        let t_lo = job.straggler_threshold(lo);
        let t_hi = job.straggler_threshold(hi);
        prop_assert!(t_hi >= t_lo);
        prop_assert!(job.true_stragglers(t_hi).len() <= job.true_stragglers(t_lo).len());
    }
}
