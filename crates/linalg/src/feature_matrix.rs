//! Contiguous column-major feature storage for the ML training hot path.
//!
//! # Why column-major
//!
//! NURD refits its latency head and propensity model at *every checkpoint
//! of every job*, so the layout of the training matrix is the single most
//! important constant factor in end-to-end replay speed. The histogram
//! tree builder in `nurd-ml` quantizes one feature column at a time and
//! then scans per-column bin codes; a column-major layout makes both of
//! those passes a single linear sweep over contiguous `f64`s instead of a
//! pointer chase through `Vec<Vec<f64>>` rows. Row-oriented consumers
//! (tree traversal, IRLS) go through [`MatrixView`], which also accepts
//! borrowed row-major data so call sites can stay zero-copy.
//!
//! [`FeatureMatrix`] is an owned buffer designed for *reuse*: call
//! [`FeatureMatrix::fill_from_rows`] with fresh checkpoint data and the
//! previous allocation is recycled, which is what
//! `nurd_core::NurdPredictor` does with its per-predictor scratch
//! buffers.

use crate::LinalgError;

/// Owned, contiguous, column-major `rows x cols` matrix of `f64`.
///
/// Element `(r, c)` lives at `data[c * rows + r]`, so
/// [`FeatureMatrix::column`] is a contiguous slice — the access pattern
/// the binned tree builder and the standardization passes want.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    /// An empty matrix with no rows and no columns (useful as scratch to
    /// be filled later via [`FeatureMatrix::fill_from_rows`]).
    #[must_use]
    pub fn new() -> Self {
        FeatureMatrix::default()
    }

    /// A zero-filled `rows x cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        FeatureMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds from row-major sample rows. No rows yields an empty matrix
    /// (a valid scratch state), not an error.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on ragged or zero-width rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let mut m = FeatureMatrix::new();
        m.try_fill_from_rows(rows.iter().map(Vec::as_slice))?;
        Ok(m)
    }

    /// Builds from borrowed row slices (e.g. checkpoint feature views).
    /// No rows yields an empty matrix, not an error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FeatureMatrix::from_rows`].
    pub fn from_row_slices(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let mut m = FeatureMatrix::new();
        m.try_fill_from_rows(rows.iter().copied())?;
        Ok(m)
    }

    /// Refills the matrix in place from an iterator of rows, reusing the
    /// existing allocation. The matrix is left empty when `rows` is empty.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows (all rows must share one width).
    pub fn fill_from_rows<'r>(&mut self, rows: impl ExactSizeIterator<Item = &'r [f64]>) {
        self.try_fill_from_rows(rows)
            .expect("rows must be non-ragged");
    }

    fn try_fill_from_rows<'r>(
        &mut self,
        rows: impl ExactSizeIterator<Item = &'r [f64]>,
    ) -> Result<(), LinalgError> {
        let n = rows.len();
        self.data.clear();
        self.rows = 0;
        self.cols = 0;
        if n == 0 {
            return Ok(());
        }
        let mut iter = rows;
        let first = iter.next().expect("len checked above");
        let d = first.len();
        if d == 0 {
            return Err(LinalgError::ShapeMismatch {
                expected: "at least one feature".into(),
                found: "zero-width rows".into(),
            });
        }
        self.data.resize(n * d, 0.0);
        self.rows = n;
        self.cols = d;
        self.write_row(0, first)?;
        for (idx, row) in iter.enumerate() {
            self.write_row(idx + 1, row)?;
        }
        Ok(())
    }

    /// Appends rows in place, preserving the existing samples and reusing
    /// the allocation's spare capacity. This is the storage half of the
    /// warm-start refit path: consecutive NURD checkpoints share almost all
    /// of their finished set, so the per-checkpoint design matrix grows by
    /// a handful of rows instead of being regathered from scratch.
    ///
    /// The column-major layout means existing columns must shift to their
    /// new stride; that is done with one overlapping `memmove` per column
    /// (back to front), never a re-gather of old row data. Appending to an
    /// empty matrix behaves like [`FeatureMatrix::fill_from_rows`].
    ///
    /// # Panics
    ///
    /// Panics when an appended row's width differs from `cols()` (or from
    /// the first appended row's width when the matrix is empty).
    pub fn append_rows<'r>(&mut self, rows: impl ExactSizeIterator<Item = &'r [f64]>) {
        if self.rows == 0 {
            self.fill_from_rows(rows);
            return;
        }
        let add = rows.len();
        if add == 0 {
            return;
        }
        let old = self.rows;
        let new = old + add;
        let cols = self.cols;
        self.data.resize(new * cols, 0.0);
        // Shift columns to the new stride, last column first so every
        // move lands above the not-yet-moved data it may overlap.
        for c in (1..cols).rev() {
            self.data.copy_within(c * old..(c + 1) * old, c * new);
        }
        self.rows = new;
        for (k, row) in rows.enumerate() {
            assert_eq!(row.len(), cols, "appended row width mismatch");
            for (c, &v) in row.iter().enumerate() {
                self.data[c * new + old + k] = v;
            }
        }
    }

    fn write_row(&mut self, r: usize, row: &[f64]) -> Result<(), LinalgError> {
        if row.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rows of length {}", self.cols),
                found: format!("row of length {}", row.len()),
            });
        }
        for (c, &v) in row.iter().enumerate() {
            self.data[c * self.rows + r] = v;
        }
        Ok(())
    }

    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[c * self.rows + r] = value;
    }

    /// Column `c` as one contiguous slice — the payoff of the layout.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    #[inline]
    #[must_use]
    pub fn column(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Copies row `r` into `buf` (which must have length `cols`).
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds or `buf` has the wrong length.
    pub fn row_into(&self, r: usize, buf: &mut [f64]) {
        assert_eq!(buf.len(), self.cols, "buffer width mismatch");
        for (c, slot) in buf.iter_mut().enumerate() {
            *slot = self.data[c * self.rows + r];
        }
    }

    /// Row `r` as a freshly allocated `Vec` (prefer
    /// [`FeatureMatrix::row_into`] in hot paths).
    #[must_use]
    pub fn row(&self, r: usize) -> Vec<f64> {
        let mut buf = vec![0.0; self.cols];
        self.row_into(r, &mut buf);
        buf
    }

    /// Read-only [`MatrixView`] over this matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::Columns(self)
    }
}

/// A borrowed, layout-polymorphic view of a samples-by-features matrix.
///
/// The ML fitting routines take this type so the same code path serves
/// legacy row-major `&[Vec<f64>]` data, zero-copy checkpoint row slices,
/// and the column-major [`FeatureMatrix`] without materializing a copy.
#[derive(Debug, Clone, Copy)]
pub enum MatrixView<'a> {
    /// Borrowed row-major rows (`x[i]` is sample `i`).
    Rows(&'a [Vec<f64>]),
    /// Borrowed row slices, e.g. straight out of checkpoint task views.
    RowSlices(&'a [&'a [f64]]),
    /// Borrowed column-major storage.
    Columns(&'a FeatureMatrix),
}

impl<'a> MatrixView<'a> {
    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            MatrixView::Rows(r) => r.len(),
            MatrixView::RowSlices(r) => r.len(),
            MatrixView::Columns(m) => m.rows(),
        }
    }

    /// Number of columns (features); `0` for an empty view.
    #[must_use]
    pub fn cols(&self) -> usize {
        match self {
            MatrixView::Rows(r) => r.first().map_or(0, Vec::len),
            MatrixView::RowSlices(r) => r.first().map_or(0, |row| row.len()),
            MatrixView::Columns(m) => m.cols(),
        }
    }

    /// Whether the view holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            MatrixView::Rows(rows) => rows[r][c],
            MatrixView::RowSlices(rows) => rows[r][c],
            MatrixView::Columns(m) => m.get(r, c),
        }
    }

    /// Row `r` as a contiguous slice when the underlying layout has one
    /// (`Rows` / `RowSlices`); `None` for column-major storage.
    #[must_use]
    pub fn row_slice(&self, r: usize) -> Option<&'a [f64]> {
        match self {
            MatrixView::Rows(rows) => Some(&rows[r]),
            MatrixView::RowSlices(rows) => Some(rows[r]),
            MatrixView::Columns(_) => None,
        }
    }

    /// Copies row `r` into `buf` (length `cols`).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds or on width mismatch.
    pub fn row_into(&self, r: usize, buf: &mut [f64]) {
        match self {
            MatrixView::Rows(rows) => buf.copy_from_slice(&rows[r]),
            MatrixView::RowSlices(rows) => buf.copy_from_slice(rows[r]),
            MatrixView::Columns(m) => m.row_into(r, buf),
        }
    }

    /// Copies column `c` into `out` (cleared first). For column-major
    /// storage this is a `memcpy`; for row layouts it gathers.
    ///
    /// # Panics
    ///
    /// Panics when `c >= cols`.
    pub fn gather_column(&self, c: usize, out: &mut Vec<f64>) {
        out.clear();
        match self {
            MatrixView::Rows(rows) => out.extend(rows.iter().map(|row| row[c])),
            MatrixView::RowSlices(rows) => out.extend(rows.iter().map(|row| row[c])),
            MatrixView::Columns(m) => out.extend_from_slice(m.column(c)),
        }
    }

    /// Validates that every row has the same non-zero width and that the
    /// row count matches `expected_rows`; returns the width.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] on no rows, [`LinalgError::ShapeMismatch`]
    /// on ragged/zero-width rows or a row-count mismatch.
    pub fn validated_dims(&self, expected_rows: usize) -> Result<usize, LinalgError> {
        let n = self.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if n != expected_rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{expected_rows} rows"),
                found: format!("{n} rows"),
            });
        }
        let d = self.cols();
        if d == 0 {
            return Err(LinalgError::ShapeMismatch {
                expected: "at least one feature".into(),
                found: "zero-width rows".into(),
            });
        }
        let ragged = match self {
            MatrixView::Rows(rows) => rows.iter().find(|row| row.len() != d).map(|row| row.len()),
            MatrixView::RowSlices(rows) => {
                rows.iter().find(|row| row.len() != d).map(|row| row.len())
            }
            MatrixView::Columns(_) => None,
        };
        if let Some(w) = ragged {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rows of length {d}"),
                found: format!("row of length {w}"),
            });
        }
        Ok(d)
    }
}

impl<'a> From<&'a [Vec<f64>]> for MatrixView<'a> {
    fn from(rows: &'a [Vec<f64>]) -> Self {
        MatrixView::Rows(rows)
    }
}

impl<'a> From<&'a Vec<Vec<f64>>> for MatrixView<'a> {
    fn from(rows: &'a Vec<Vec<f64>>) -> Self {
        MatrixView::Rows(rows)
    }
}

impl<'a> From<&'a [&'a [f64]]> for MatrixView<'a> {
    fn from(rows: &'a [&'a [f64]]) -> Self {
        MatrixView::RowSlices(rows)
    }
}

impl<'a> From<&'a FeatureMatrix> for MatrixView<'a> {
    fn from(m: &'a FeatureMatrix) -> Self {
        MatrixView::Columns(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f64>> {
        vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = sample();
        let m = FeatureMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), rows[0]);
        assert_eq!(m.row(1), rows[1]);
    }

    #[test]
    fn columns_are_contiguous() {
        let m = FeatureMatrix::from_rows(&sample()).unwrap();
        assert_eq!(m.column(0), &[1.0, 4.0]);
        assert_eq!(m.column(2), &[3.0, 6.0]);
    }

    #[test]
    fn fill_reuses_allocation_and_resizes() {
        let mut m = FeatureMatrix::from_rows(&sample()).unwrap();
        let fresh = [vec![9.0], vec![8.0], vec![7.0]];
        m.fill_from_rows(fresh.iter().map(Vec::as_slice));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 1);
        assert_eq!(m.column(0), &[9.0, 8.0, 7.0]);
        m.fill_from_rows(std::iter::empty());
        assert!(m.is_empty());
    }

    #[test]
    fn append_rows_preserves_prefix_and_matches_full_rebuild() {
        let mut grown = FeatureMatrix::from_rows(&sample()).unwrap();
        let extra = [vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]];
        grown.append_rows(extra.iter().map(Vec::as_slice));

        let mut all = sample();
        all.extend(extra.iter().cloned());
        let rebuilt = FeatureMatrix::from_rows(&all).unwrap();
        assert_eq!(grown, rebuilt);
        assert_eq!(grown.column(0), &[1.0, 4.0, 7.0, 10.0]);
        assert_eq!(grown.column(2), &[3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn append_rows_to_empty_fills() {
        let mut m = FeatureMatrix::new();
        let rows = sample();
        m.append_rows(rows.iter().map(Vec::as_slice));
        assert_eq!(m, FeatureMatrix::from_rows(&rows).unwrap());
        m.append_rows(std::iter::empty());
        assert_eq!(m.rows(), 2);
    }

    #[test]
    fn repeated_single_row_appends_match_batch() {
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| vec![f64::from(i), f64::from(i * i), -f64::from(i)])
            .collect();
        let mut incremental = FeatureMatrix::new();
        for row in &rows {
            incremental.append_rows(std::iter::once(row.as_slice()));
        }
        assert_eq!(incremental, FeatureMatrix::from_rows(&rows).unwrap());
    }

    #[test]
    #[should_panic(expected = "appended row width mismatch")]
    fn append_rows_rejects_ragged() {
        let mut m = FeatureMatrix::from_rows(&sample()).unwrap();
        let bad = [vec![1.0]];
        m.append_rows(bad.iter().map(Vec::as_slice));
    }

    #[test]
    fn rejects_ragged_and_empty() {
        assert_eq!(
            FeatureMatrix::from_rows(&[]).map(|m| m.rows()),
            Ok(0),
            "no rows is a valid empty matrix"
        );
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            FeatureMatrix::from_rows(&ragged),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let zero_width: Vec<Vec<f64>> = vec![vec![]];
        assert!(matches!(
            FeatureMatrix::from_rows(&zero_width),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn views_agree_across_layouts() {
        let rows = sample();
        let slices: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let m = FeatureMatrix::from_rows(&rows).unwrap();
        let views = [
            MatrixView::Rows(&rows),
            MatrixView::RowSlices(&slices),
            m.view(),
        ];
        for v in &views {
            assert_eq!(v.rows(), 2);
            assert_eq!(v.cols(), 3);
            for (r, row) in rows.iter().enumerate() {
                for (c, &want) in row.iter().enumerate() {
                    assert_eq!(v.get(r, c), want);
                }
            }
            let mut buf = [0.0; 3];
            v.row_into(1, &mut buf);
            assert_eq!(buf.as_slice(), rows[1].as_slice());
            let mut col = Vec::new();
            v.gather_column(1, &mut col);
            assert_eq!(col, vec![2.0, 5.0]);
            assert_eq!(v.validated_dims(2).unwrap(), 3);
        }
        assert!(views[0].row_slice(0).is_some());
        assert!(views[2].row_slice(0).is_none());
    }

    #[test]
    fn validated_dims_catches_mismatches() {
        let rows = sample();
        let v = MatrixView::Rows(&rows);
        assert!(matches!(
            v.validated_dims(3),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            MatrixView::Rows(&empty).validated_dims(0),
            Err(LinalgError::Empty)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            MatrixView::Rows(&ragged).validated_dims(2),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
