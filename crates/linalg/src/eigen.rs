//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::{LinalgError, Matrix};

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by **descending** eigenvalue, which is the order the
/// PCA outlier detector consumes them in (major components first).
///
/// # Example
///
/// ```
/// use nurd_linalg::{Matrix, SymmetricEigen};
///
/// # fn main() -> Result<(), nurd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]])?;
/// let eig = SymmetricEigen::decompose(&a)?;
/// assert!((eig.eigenvalues()[0] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Eigenvectors stored as rows, matching `eigenvalues` order.
    eigenvectors: Vec<Vec<f64>>,
}

impl SymmetricEigen {
    /// Decomposes a symmetric matrix; only symmetry up to rounding is assumed
    /// (the strict lower triangle is mirrored from the upper one).
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::Empty`] for a 0x0 matrix.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if n == 0 {
            return Err(LinalgError::Empty);
        }

        // Work on a symmetrized copy.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, 0.5 * (a.get(i, j) + a.get(j, i)));
            }
        }
        let mut v = Matrix::identity(n);

        const MAX_SWEEPS: usize = 64;
        for _sweep in 0..MAX_SWEEPS {
            let mut off_diag = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off_diag += m.get(i, j) * m.get(i, j);
                }
            }
            if off_diag.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable Jacobi rotation: t = sign(θ)/(|θ| + sqrt(θ²+1)).
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (theta * theta + 1.0).sqrt())
                    } else {
                        -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                    };
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    for k in 0..n {
                        let mkp = m.get(k, p);
                        let mkq = m.get(k, q);
                        m.set(k, p, c * mkp - s * mkq);
                        m.set(k, q, s * mkp + c * mkq);
                    }
                    for k in 0..n {
                        let mpk = m.get(p, k);
                        let mqk = m.get(q, k);
                        m.set(p, k, c * mpk - s * mqk);
                        m.set(q, k, s * mpk + c * mqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }

        let mut pairs: Vec<(f64, Vec<f64>)> = (0..n).map(|i| (m.get(i, i), v.column(i))).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let (eigenvalues, eigenvectors) = pairs.into_iter().unzip();
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    #[must_use]
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvector for the `i`-th (descending) eigenvalue, unit-norm.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn eigenvector(&self, i: usize) -> &[f64] {
        &self.eigenvectors[i]
    }

    /// Number of eigenpairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Whether the decomposition is empty (never true for a valid result).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.eigenvalues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]).unwrap();
        let eig = SymmetricEigen::decompose(&a).unwrap();
        let vals = eig.eigenvalues();
        assert!((vals[0] - 5.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenpairs() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::decompose(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-10);
        // Eigenvector of λ=3 is (1,1)/sqrt(2) up to sign.
        let v = eig.eigenvector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            SymmetricEigen::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn eigenvectors_unit_norm_and_orthogonal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]).unwrap();
        let eig = SymmetricEigen::decompose(&a).unwrap();
        for i in 0..eig.len() {
            assert!((crate::l2_norm(eig.eigenvector(i)) - 1.0).abs() < 1e-8);
            for j in (i + 1)..eig.len() {
                assert!(crate::dot(eig.eigenvector(i), eig.eigenvector(j)).abs() < 1e-8);
            }
        }
    }

    proptest! {
        /// A·v = λ·v for every eigenpair of a random symmetric matrix.
        #[test]
        fn prop_reconstruction(seed in proptest::collection::vec(
            proptest::collection::vec(-3.0..3.0f64, 4), 4)) {
            let b = Matrix::from_vec_of_rows(seed).unwrap();
            let sym = b.add(&b.transpose()).unwrap().scaled(0.5);
            let eig = SymmetricEigen::decompose(&sym).unwrap();
            for i in 0..eig.len() {
                let v = eig.eigenvector(i);
                let av = sym.matvec(v).unwrap();
                let lv: Vec<f64> = v.iter().map(|x| x * eig.eigenvalues()[i]).collect();
                for (a, b) in av.iter().zip(lv.iter()) {
                    prop_assert!((a - b).abs() < 1e-6, "Av={a} != lv={b}");
                }
            }
        }

        /// Trace equals the sum of eigenvalues.
        #[test]
        fn prop_trace_invariant(seed in proptest::collection::vec(
            proptest::collection::vec(-3.0..3.0f64, 3), 3)) {
            let b = Matrix::from_vec_of_rows(seed).unwrap();
            let sym = b.add(&b.transpose()).unwrap().scaled(0.5);
            let trace: f64 = (0..3).map(|i| sym.get(i, i)).sum();
            let eig = SymmetricEigen::decompose(&sym).unwrap();
            let sum: f64 = eig.eigenvalues().iter().sum();
            prop_assert!((trace - sum).abs() < 1e-8);
        }
    }
}
