//! Free functions over `&[f64]` slices.
//!
//! Feature vectors in the NURD pipeline are plain slices; these helpers keep
//! the hot paths allocation-free.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(nurd_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
///
/// # Example
///
/// ```
/// assert_eq!(nurd_linalg::l2_norm(&[3.0, 4.0]), 5.0);
/// ```
#[must_use]
pub fn l2_norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn subtract(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "subtract: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// In-place `a += alpha * b` (the BLAS `axpy` primitive).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_scaled(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add_scaled: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// In-place scalar multiplication `a *= alpha`.
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[must_use]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().sum::<f64>() / a.len() as f64
}

/// Population variance of a slice; `0.0` when fewer than two elements.
#[must_use]
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norm_of_zero_vector() {
        assert_eq!(l2_norm(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn distance_is_symmetric_on_fixture() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(euclidean_distance(&a, &b), euclidean_distance(&b, &a));
    }

    #[test]
    fn subtract_then_norm_equals_distance() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert!((l2_norm(&subtract(&a, &b)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = vec![1.0, 1.0];
        add_scaled(&mut a, 2.0, &[1.0, -1.0]);
        assert_eq!(a, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut a = vec![1.0, -2.0];
        scale(&mut a, -3.0);
        assert_eq!(a, vec![-3.0, 6.0]);
    }

    #[test]
    fn mean_and_variance_fixture() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_cauchy_schwarz(a in proptest::collection::vec(-1e3..1e3f64, 1..16),
                               b in proptest::collection::vec(-1e3..1e3f64, 1..16)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert!(dot(a, b).abs() <= l2_norm(a) * l2_norm(b) + 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(a in proptest::collection::vec(-1e3..1e3f64, 2..12),
                                    b in proptest::collection::vec(-1e3..1e3f64, 2..12),
                                    c in proptest::collection::vec(-1e3..1e3f64, 2..12)) {
            let n = a.len().min(b.len()).min(c.len());
            let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
            prop_assert!(euclidean_distance(a, c)
                <= euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-6);
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e4..1e4f64, 0..32)) {
            prop_assert!(variance(&xs) >= 0.0);
        }
    }
}
