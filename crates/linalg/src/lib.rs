//! Small dense linear algebra substrate for the NURD reproduction.
//!
//! The NURD paper's baselines need a handful of classic dense routines:
//! covariance matrices and Mahalanobis distances (MCD), symmetric
//! eigendecomposition (PCA), Newton steps over small Hessians (logistic
//! regression, Tobit, CoxPH). Problems are small (tens of features), so this
//! crate favors clarity and numerical robustness over cache blocking.
//!
//! # Example
//!
//! ```
//! use nurd_linalg::Matrix;
//!
//! # fn main() -> Result<(), nurd_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let inv = a.inverse()?;
//! let id = a.matmul(&inv)?;
//! assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod decomp;
mod eigen;
mod error;
mod matrix;
mod stats;
mod vector;

pub use decomp::{Cholesky, Lu};
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use stats::{column_means, covariance_matrix, mahalanobis_squared, standardize_columns};
pub use vector::{
    add_scaled, dot, euclidean_distance, l2_norm, mean, scale, squared_distance, subtract,
    variance,
};
