//! Small dense linear algebra substrate for the NURD reproduction.
//!
//! The NURD paper's baselines need a handful of classic dense routines:
//! covariance matrices and Mahalanobis distances (MCD), symmetric
//! eigendecomposition (PCA), Newton steps over small Hessians (logistic
//! regression, Tobit, CoxPH). Problems are small (tens of features), so this
//! crate favors clarity and numerical robustness over cache blocking.
//!
//! # Feature storage for the training hot path
//!
//! The one place layout *does* matter is the online refit loop: NURD
//! retrains its models at every checkpoint, and `nurd-ml`'s histogram
//! tree builder wants per-feature columns as contiguous memory. Two types
//! serve that path:
//!
//! * [`FeatureMatrix`] — owned, contiguous, **column-major** samples ×
//!   features storage. `column(j)` is a plain `&[f64]` slice, and
//!   [`FeatureMatrix::fill_from_rows`] refills the buffer in place so
//!   per-checkpoint scratch reuse allocates nothing in steady state.
//! * [`MatrixView`] — a borrowed, layout-polymorphic view (`&[Vec<f64>]`
//!   rows, zero-copy `&[&[f64]]` row slices, or a `FeatureMatrix`), so
//!   the ML fitting routines accept any of the three without copying.
//!
//! For the warm-start refit path, [`FeatureMatrix::append_rows`] grows
//! the matrix in place (one `memmove` per column, no re-gather of old
//! rows) — consecutive NURD checkpoints share almost all of their
//! finished set, and `nurd-core`'s `WarmRefitState` leans on this to keep
//! one append-only design matrix alive per job.
//!
//! # Example
//!
//! ```
//! use nurd_linalg::Matrix;
//!
//! # fn main() -> Result<(), nurd_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let inv = a.inverse()?;
//! let id = a.matmul(&inv)?;
//! assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod decomp;
mod eigen;
mod error;
mod feature_matrix;
mod matrix;
mod stats;
mod vector;

pub use decomp::{Cholesky, Lu};
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use feature_matrix::{FeatureMatrix, MatrixView};
pub use matrix::Matrix;
pub use stats::{column_means, covariance_matrix, mahalanobis_squared, standardize_columns};
pub use vector::{
    add_scaled, dot, euclidean_distance, l2_norm, mean, scale, squared_distance, subtract, variance,
};
