//! Multivariate statistics over row-major sample sets.

use crate::{LinalgError, Matrix};

/// Per-column means of a sample set (rows = samples).
///
/// # Errors
///
/// [`LinalgError::Empty`] when `samples` is empty,
/// [`LinalgError::ShapeMismatch`] on ragged rows.
pub fn column_means(samples: &[Vec<f64>]) -> Result<Vec<f64>, LinalgError> {
    let first = samples.first().ok_or(LinalgError::Empty)?;
    let d = first.len();
    let mut means = vec![0.0; d];
    for row in samples {
        if row.len() != d {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rows of length {d}"),
                found: format!("row of length {}", row.len()),
            });
        }
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    let n = samples.len() as f64;
    for m in &mut means {
        *m /= n;
    }
    Ok(means)
}

/// Sample covariance matrix (denominator `n - 1`, or `n` when `n == 1`).
///
/// # Errors
///
/// Same conditions as [`column_means`].
pub fn covariance_matrix(samples: &[Vec<f64>]) -> Result<Matrix, LinalgError> {
    let means = column_means(samples)?;
    let d = means.len();
    let n = samples.len();
    let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
    let mut cov = Matrix::zeros(d, d);
    for row in samples {
        for i in 0..d {
            let di = row[i] - means[i];
            for j in i..d {
                let dj = row[j] - means[j];
                let v = cov.get(i, j) + di * dj / denom;
                cov.set(i, j, v);
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            cov.set(i, j, cov.get(j, i));
        }
    }
    Ok(cov)
}

/// Squared Mahalanobis distance `(x - μ)ᵀ Σ⁻¹ (x - μ)` given a precomputed
/// precision matrix `Σ⁻¹`.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when dimensions disagree.
pub fn mahalanobis_squared(
    x: &[f64],
    mean: &[f64],
    precision: &Matrix,
) -> Result<f64, LinalgError> {
    if x.len() != mean.len() || precision.rows() != x.len() || precision.cols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("{0}-vector and {0}x{0} precision", mean.len()),
            found: format!(
                "{}-vector and {}x{} precision",
                x.len(),
                precision.rows(),
                precision.cols()
            ),
        });
    }
    let diff = crate::subtract(x, mean);
    let proj = precision.matvec(&diff)?;
    Ok(crate::dot(&diff, &proj))
}

/// Column-standardization parameters learned by [`standardize_columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct Standardization {
    /// Per-column means subtracted from the data.
    pub means: Vec<f64>,
    /// Per-column standard deviations divided out (floored at `1e-12`).
    pub stds: Vec<f64>,
}

/// Standardizes columns in place to zero mean / unit variance and returns the
/// parameters so the same transform can be applied to new samples.
///
/// Constant columns get a standard deviation of `1.0` so they map to zero
/// rather than NaN.
///
/// # Errors
///
/// Same conditions as [`column_means`].
pub fn standardize_columns(samples: &mut [Vec<f64>]) -> Result<Standardization, LinalgError> {
    let means = column_means(samples)?;
    let d = means.len();
    let n = samples.len() as f64;
    let mut stds = vec![0.0; d];
    for row in samples.iter() {
        for j in 0..d {
            let diff = row[j] - means[j];
            stds[j] += diff * diff;
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 1.0;
        }
    }
    for row in samples.iter_mut() {
        for j in 0..d {
            row[j] = (row[j] - means[j]) / stds[j];
        }
    }
    Ok(Standardization { means, stds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn means_of_fixture() {
        let samples = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
        assert_eq!(column_means(&samples).unwrap(), vec![2.0, 20.0]);
    }

    #[test]
    fn means_empty_errors() {
        assert!(matches!(column_means(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let samples = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        let cov = covariance_matrix(&samples).unwrap();
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn mahalanobis_identity_precision_is_euclidean() {
        let precision = Matrix::identity(2);
        let d2 = mahalanobis_squared(&[3.0, 4.0], &[0.0, 0.0], &precision).unwrap();
        assert!((d2 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_scales_with_precision() {
        // Variance 4 in dim 0 => precision 0.25 => distance shrinks 4x.
        let precision = Matrix::from_rows(&[&[0.25, 0.0], &[0.0, 1.0]]).unwrap();
        let d2 = mahalanobis_squared(&[2.0, 0.0], &[0.0, 0.0], &precision).unwrap();
        assert!((d2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_shape_mismatch() {
        let precision = Matrix::identity(3);
        assert!(mahalanobis_squared(&[1.0, 2.0], &[0.0, 0.0], &precision).is_err());
    }

    #[test]
    fn standardize_produces_zero_mean_unit_variance() {
        let mut samples = vec![vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]];
        let params = standardize_columns(&mut samples).unwrap();
        assert_eq!(params.means, vec![2.0, 200.0]);
        let means = column_means(&samples).unwrap();
        assert!(means.iter().all(|m| m.abs() < 1e-12));
        for j in 0..2 {
            let var: f64 = samples.iter().map(|r| r[j] * r[j]).sum::<f64>() / samples.len() as f64;
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardize_constant_column_maps_to_zero() {
        let mut samples = vec![vec![5.0], vec![5.0], vec![5.0]];
        let params = standardize_columns(&mut samples).unwrap();
        assert_eq!(params.stds, vec![1.0]);
        assert!(samples.iter().all(|r| r[0] == 0.0));
    }

    proptest! {
        /// Covariance matrices are positive semi-definite: xᵀΣx ≥ 0.
        #[test]
        fn prop_covariance_psd(samples in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 3), 2..20),
            probe in proptest::collection::vec(-1.0..1.0f64, 3)) {
            let cov = covariance_matrix(&samples).unwrap();
            let proj = cov.matvec(&probe).unwrap();
            prop_assert!(crate::dot(&probe, &proj) >= -1e-8);
        }

        /// Mahalanobis distance with any SPD precision is non-negative.
        #[test]
        fn prop_mahalanobis_nonnegative(x in proptest::collection::vec(-5.0..5.0f64, 3),
                                        mu in proptest::collection::vec(-5.0..5.0f64, 3)) {
            let precision = Matrix::identity(3).scaled(0.7);
            prop_assert!(mahalanobis_squared(&x, &mu, &precision).unwrap() >= 0.0);
        }
    }
}
