use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. matmul of 2x3 by 2x2).
    ShapeMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape actually provided.
        found: String,
    },
    /// A decomposition required a square matrix but got a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically so) and cannot be factored.
    Singular,
    /// Cholesky factorization was asked of a non positive-definite matrix.
    NotPositiveDefinite,
    /// An input was empty where at least one element is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::Empty => write!(f, "input is empty"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            LinalgError::ShapeMismatch {
                expected: "2x2".into(),
                found: "2x3".into(),
            },
            LinalgError::NotSquare { rows: 2, cols: 3 },
            LinalgError::Singular,
            LinalgError::NotPositiveDefinite,
            LinalgError::Empty,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
