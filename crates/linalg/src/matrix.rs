//! A minimal row-major dense matrix.

use crate::{LinalgError, SymmetricEigen};

/// Row-major dense matrix of `f64`.
///
/// Sized for the NURD workloads: up to a few thousand rows and a few dozen
/// columns. All fallible operations return [`LinalgError`] rather than
/// panicking so callers (model fitting loops) can recover from degenerate
/// inputs such as constant features.
///
/// # Example
///
/// ```
/// use nurd_linalg::Matrix;
///
/// # fn main() -> Result<(), nurd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty and
    /// [`LinalgError::ShapeMismatch`] if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    expected: format!("rows of length {cols}"),
                    found: format!("row of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from owned row vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::from_rows`].
    pub fn from_vec_of_rows(rows: Vec<Vec<f64>>) -> Result<Self, LinalgError> {
        let views: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        Matrix::from_rows(&views)
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows).map(|r| crate::dot(self.row(r), v)).collect())
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Copy scaled by `alpha`.
    #[must_use]
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= alpha;
        }
        out
    }

    /// Inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        crate::Lu::decompose(self)?.inverse()
    }

    /// Determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`]; a singular matrix yields `0.0`.
    pub fn determinant(&self) -> Result<f64, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        match crate::Lu::decompose(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Symmetric eigendecomposition (Jacobi); `self` must be symmetric.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen, LinalgError> {
        SymmetricEigen::decompose(self)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1: &[f64] = &[1.0, 2.0];
        let r2: &[f64] = &[1.0];
        assert!(matches!(
            Matrix::from_rows(&[r1, r2]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_empty() {
        let rows: &[&[f64]] = &[];
        assert!(matches!(Matrix::from_rows(rows), Err(LinalgError::Empty)));
    }

    #[test]
    fn from_flat_checks_size() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.sub(&b).unwrap(), a);
    }

    #[test]
    fn determinant_2x2() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        assert!((a.determinant().unwrap() - (-14.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_singular_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn column_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn scaled_scales_every_entry() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        let s = a.scaled(2.0);
        assert_eq!(s.row(0), &[2.0, -4.0]);
    }
}
