//! LU (partial pivoting) and Cholesky factorizations.

use crate::{LinalgError, Matrix};

/// LU decomposition with partial pivoting: `P * A = L * U`.
///
/// Used for determinants (MCD objective), linear solves (Newton steps in
/// Tobit/CoxPH/logistic regression) and inverses (Mahalanobis distances).
///
/// # Example
///
/// ```
/// use nurd_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), nurd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (L has implicit unit diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`).
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::Singular`] when a pivot underflows.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to the top.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                for c in (k + 1)..n {
                    lu.set(r, c, lu.get(r, c) - factor * lu.get(k, c));
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).fold(self.perm_sign, |acc, i| acc * self.lu.get(i, i))
    }

    /// Log of the absolute determinant — robust for near-singular scatter
    /// matrices in the MCD objective.
    #[must_use]
    pub fn log_abs_determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu.get(i, i).abs().ln()).sum()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `b.len()` differs from the dimension.
    // Triangular substitution reads `y[j]`/`x[j]` against row `i` of the
    // factor; explicit indices mirror the textbook recurrences.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward substitution on the permuted right-hand side.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu.get(i, j) * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the column solves.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for (r, v) in col.into_iter().enumerate() {
                inv.set(r, c, v);
            }
        }
        Ok(inv)
    }
}

/// Cholesky factorization `A = L * Lᵀ` of a symmetric positive-definite matrix.
///
/// # Example
///
/// ```
/// use nurd_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), nurd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::decompose(&a)?;
/// assert!((chol.factor().get(0, 0) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
    /// non-positive.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] if `b.len()` differs from the dimension.
    // Triangular substitution reads `y[j]`/`x[j]` against row `i` of the
    // factor; explicit indices mirror the textbook recurrences.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l.get(i, j) * y[j];
            }
            y[i] = acc / self.l.get(i, i);
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l.get(j, i) * x[j];
            }
            x[i] = acc / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the log-determinant of `L`).
    #[must_use]
    pub fn log_determinant(&self) -> f64 {
        let n = self.l.rows();
        2.0 * (0..n).map(|i| self.l.get(i, i).ln()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn lu_solves_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert_close(x[0], 2.0, 1e-10);
        assert_close(x[1], 3.0, 1e-10);
        assert_close(x[2], -1.0, 1e-10);
    }

    #[test]
    fn lu_determinant_matches_cofactor_expansion() {
        let a =
            Matrix::from_rows(&[&[6.0, 1.0, 1.0], &[4.0, -2.0, 5.0], &[2.0, 8.0, 7.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert_close(lu.determinant(), -306.0, 1e-9);
        assert_close(lu.log_abs_determinant(), 306.0f64.ln(), 1e-9);
    }

    #[test]
    fn lu_inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let id = a.matmul(&inv).unwrap();
        assert_close(id.get(0, 0), 1.0, 1e-12);
        assert_close(id.get(0, 1), 0.0, 1e-12);
        assert_close(id.get(1, 0), 0.0, 1e-12);
        assert_close(id.get(1, 1), 1.0, 1e-12);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::decompose(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn lu_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn lu_pivots_on_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert_close(lu.determinant(), -1.0, 1e-12);
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn cholesky_known_factor() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        assert_close(l.get(0, 0), 5.0, 1e-12);
        assert_close(l.get(1, 0), 3.0, 1e-12);
        assert_close(l.get(1, 1), 3.0, 1e-12);
        assert_close(l.get(2, 0), -1.0, 1e-12);
        assert_close(l.get(2, 1), 1.0, 1e-12);
        assert_close(l.get(2, 2), 3.0, 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn cholesky_solve_matches_lu_solve() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let b = [1.0, 2.0];
        let x1 = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x2 = Lu::decompose(&a).unwrap().solve(&b).unwrap();
        assert_close(x1[0], x2[0], 1e-10);
        assert_close(x1[1], x2[1], 1e-10);
    }

    #[test]
    fn cholesky_log_determinant() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let chol = Cholesky::decompose(&a).unwrap();
        assert_close(chol.log_determinant(), 36.0f64.ln(), 1e-12);
    }

    proptest! {
        /// Random SPD matrices (A = B·Bᵀ + n·I) factor and solve correctly.
        #[test]
        fn prop_spd_solve_roundtrip(seed_rows in proptest::collection::vec(
            proptest::collection::vec(-2.0..2.0f64, 4), 4)) {
            let b = Matrix::from_vec_of_rows(seed_rows).unwrap();
            let spd = b
                .matmul(&b.transpose())
                .unwrap()
                .add(&Matrix::identity(4).scaled(4.0))
                .unwrap();
            let rhs = [1.0, -2.0, 0.5, 3.0];
            let chol = Cholesky::decompose(&spd).unwrap();
            let x = chol.solve(&rhs).unwrap();
            let back = spd.matvec(&x).unwrap();
            for (a, b) in back.iter().zip(rhs.iter()) {
                prop_assert!((a - b).abs() < 1e-7);
            }
        }

        /// det(A·Aᵀ + I) via LU is strictly positive (matrix is SPD).
        #[test]
        fn prop_spd_determinant_positive(seed_rows in proptest::collection::vec(
            proptest::collection::vec(-2.0..2.0f64, 3), 3)) {
            let b = Matrix::from_vec_of_rows(seed_rows).unwrap();
            let spd = b
                .matmul(&b.transpose())
                .unwrap()
                .add(&Matrix::identity(3))
                .unwrap();
            let lu = Lu::decompose(&spd).unwrap();
            prop_assert!(lu.determinant() > 0.0);
        }
    }
}
