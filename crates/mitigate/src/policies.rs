//! Concrete [`MitigationPolicy`] implementations.
//!
//! Every policy here honors the determinism contract of
//! [`nurd_data::mitigation`](nurd_data::BarrierView): decisions are pure
//! functions of the barrier views seen so far (none reads
//! [`BarrierView::backlog`]), so each produces a bit-identical action log
//! at any shard count. Per-job state is a set of already-proposed tasks —
//! the engine would suppress repeats anyway, but proposing them would
//! inflate its `mitigation_suppressed` counter and hide real policy bugs.

use std::collections::{BTreeMap, BTreeSet};

use nurd_data::{BarrierView, JobTrace, MitigationAction, MitigationPolicy};
use nurd_health::NodeVerdict;
use nurd_serve::MitigatorFactory;

/// The do-nothing baseline: sees every barrier, acts on none. The
/// mitigated run is identical to the unmitigated one — the anchor the
/// acceptance gates compare real policies against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopPolicy;

impl MitigationPolicy for NoopPolicy {
    fn name(&self) -> &str {
        "noop"
    }

    fn decide(&mut self, _view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        Vec::new()
    }
}

/// Score-threshold cloning with a per-job clone budget: every running
/// task whose normalized score reaches `score_threshold` gets one
/// [`MitigationAction::Clone`], highest scores first, until the budget
/// runs out. A threshold of `1.0` clones exactly the predictor-flagged
/// tasks; lower values act earlier (more catches, more waste).
#[derive(Debug, Clone)]
pub struct ThresholdClonePolicy {
    score_threshold: f64,
    budget: Option<usize>,
    proposed: BTreeSet<usize>,
}

impl ThresholdClonePolicy {
    /// A policy cloning at `score_threshold` with an optional per-job
    /// clone budget (`None` = unlimited).
    #[must_use]
    pub fn new(score_threshold: f64, budget: Option<usize>) -> Self {
        ThresholdClonePolicy {
            score_threshold,
            budget,
            proposed: BTreeSet::new(),
        }
    }
}

impl MitigationPolicy for ThresholdClonePolicy {
    fn name(&self) -> &str {
        "threshold-clone"
    }

    fn clone_budget(&self) -> Option<usize> {
        self.budget
    }

    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        let mut candidates: Vec<_> = view
            .scores
            .iter()
            .filter(|s| s.score >= self.score_threshold && !self.proposed.contains(&s.task))
            .collect();
        // Budget is spent best-first: highest score, then lowest task id
        // so ties break the same way everywhere.
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.task.cmp(&b.task)));
        let mut remaining = view.clones_remaining;
        let mut actions = Vec::new();
        for candidate in candidates {
            if remaining == Some(0) {
                break;
            }
            if let Some(r) = remaining.as_mut() {
                *r -= 1;
            }
            self.proposed.insert(candidate.task);
            actions.push((candidate.task, MitigationAction::Clone));
        }
        actions
    }
}

/// Clones the `k` highest-scoring **newly flagged** tasks at each
/// barrier: a rate-limited alternative to the threshold policy for
/// fleets where clone capacity per scheduling round is the scarce
/// resource rather than clones per job.
#[derive(Debug, Clone)]
pub struct TopKPolicy {
    k: usize,
    proposed: BTreeSet<usize>,
}

impl TopKPolicy {
    /// A policy cloning at most `k` flagged tasks per barrier.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TopKPolicy {
            k,
            proposed: BTreeSet::new(),
        }
    }
}

impl MitigationPolicy for TopKPolicy {
    fn name(&self) -> &str {
        "top-k"
    }

    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        let flagged: BTreeSet<usize> = view.flagged.iter().copied().collect();
        let mut candidates: Vec<_> = view
            .scores
            .iter()
            .filter(|s| flagged.contains(&s.task) && !self.proposed.contains(&s.task))
            .collect();
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.task.cmp(&b.task)));
        candidates
            .into_iter()
            .take(self.k)
            .map(|s| {
                self.proposed.insert(s.task);
                (s.task, MitigationAction::Clone)
            })
            .collect()
    }
}

/// Two-sided threshold cloning: clone **immediately** at `hi`, and clone
/// out of the dead band `[lo, hi)` only after a task has *lingered* there
/// for `patience` consecutive scored barriers (a score below `lo` resets
/// the streak). The single-threshold policy faces a bad trade: a high
/// threshold misses the slow-burn stragglers whose scores hover just
/// below it until far too late, while lowering it clones every transient
/// spike. The dead band splits the difference — spikes above `hi` still
/// get instant clones, hoverers get caught after `patience` barriers of
/// sustained evidence, and noise below `lo` is ignored — which is why a
/// calibrated band beats the best single threshold in the
/// `mitigation_sweep` pricing table at comparable waste.
#[derive(Debug, Clone)]
pub struct BandedClonePolicy {
    hi: f64,
    lo: f64,
    patience: usize,
    budget: Option<usize>,
    streaks: BTreeMap<usize, usize>,
    proposed: BTreeSet<usize>,
}

impl BandedClonePolicy {
    /// A banded policy cloning instantly at `hi`, after `patience`
    /// consecutive in-band barriers for scores in `[lo, hi)`, never below
    /// `lo`, with an optional per-job clone budget.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` — the band would be empty in a way that makes
    /// every knob a lie; use [`ThresholdClonePolicy`] instead.
    #[must_use]
    pub fn new(hi: f64, lo: f64, patience: usize, budget: Option<usize>) -> Self {
        assert!(lo <= hi, "banded policy needs lo <= hi");
        BandedClonePolicy {
            hi,
            lo,
            patience: patience.max(1),
            budget,
            streaks: BTreeMap::new(),
            proposed: BTreeSet::new(),
        }
    }
}

impl MitigationPolicy for BandedClonePolicy {
    fn name(&self) -> &str {
        "banded-clone"
    }

    fn clone_budget(&self) -> Option<usize> {
        self.budget
    }

    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        let mut candidates = Vec::new();
        for s in view.scores {
            if self.proposed.contains(&s.task) {
                continue;
            }
            if s.score >= self.hi {
                candidates.push(s);
            } else if s.score >= self.lo {
                let streak = self.streaks.entry(s.task).or_insert(0);
                *streak += 1;
                if *streak >= self.patience {
                    candidates.push(s);
                }
            } else {
                self.streaks.remove(&s.task);
            }
        }
        // Budget is spent best-first, ties to the lowest task id —
        // identical to the single-threshold policy so the comparison is
        // purely about the band.
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.task.cmp(&b.task)));
        let mut remaining = view.clones_remaining;
        let mut actions = Vec::new();
        for candidate in candidates {
            if remaining == Some(0) {
                break;
            }
            if let Some(r) = remaining.as_mut() {
                *r -= 1;
            }
            self.streaks.remove(&candidate.task);
            self.proposed.insert(candidate.task);
            actions.push((candidate.task, MitigationAction::Clone));
        }
        actions
    }
}

/// Node-health-aware mitigation: tasks placed on a
/// [`NodeVerdict::Quarantine`] node are **quarantined** (evicted and
/// restarted on a healthy machine — the simulator's clock restart) at
/// the first scored barrier they appear in, score unseen; tasks on
/// [`NodeVerdict::Watch`] nodes clone at the lowered `watch_threshold`;
/// everything else behaves like [`ThresholdClonePolicy`] at
/// `score_threshold`.
///
/// The verdict map is **frozen at construction** (capture it from
/// [`nurd_health::HealthAggregator::verdicts`] between harness passes,
/// as [`crate::run_node_fleet`] does) rather than read live: a live read
/// would make decisions depend on how far *other* jobs' observations had
/// progressed — scheduling order — and break the bit-identical action
/// log across shard counts. Jobs without a node placement fall back to
/// pure threshold cloning.
#[derive(Debug, Clone)]
pub struct NodeAwarePolicy {
    verdicts: BTreeMap<u32, NodeVerdict>,
    score_threshold: f64,
    watch_threshold: f64,
    budget: Option<usize>,
    proposed: BTreeSet<usize>,
}

impl NodeAwarePolicy {
    /// A node-aware policy over a frozen verdict map: quarantine
    /// `Quarantine`-node tasks on sight, clone `Watch`-node tasks at
    /// `watch_threshold`, everyone else at `score_threshold`, with an
    /// optional per-job clone budget (quarantines are not clones and do
    /// not consume it).
    #[must_use]
    pub fn new(
        verdicts: BTreeMap<u32, NodeVerdict>,
        score_threshold: f64,
        watch_threshold: f64,
        budget: Option<usize>,
    ) -> Self {
        NodeAwarePolicy {
            verdicts,
            score_threshold,
            watch_threshold,
            budget,
            proposed: BTreeSet::new(),
        }
    }

    fn verdict_for(&self, nodes: Option<&[u32]>, task: usize) -> NodeVerdict {
        nodes
            .and_then(|nodes| nodes.get(task))
            .and_then(|node| self.verdicts.get(node).copied())
            .unwrap_or(NodeVerdict::Healthy)
    }
}

impl MitigationPolicy for NodeAwarePolicy {
    fn name(&self) -> &str {
        "node-aware"
    }

    fn clone_budget(&self) -> Option<usize> {
        self.budget
    }

    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        let mut actions = Vec::new();
        // Quarantined machines first: evict on sight, no score needed —
        // the node itself is the evidence.
        for s in view.scores {
            if !self.proposed.contains(&s.task)
                && self.verdict_for(view.nodes, s.task) == NodeVerdict::Quarantine
            {
                self.proposed.insert(s.task);
                actions.push((s.task, MitigationAction::Quarantine));
            }
        }
        // Everyone else: threshold cloning, with the watch discount.
        let mut candidates: Vec<_> = view
            .scores
            .iter()
            .filter(|s| {
                !self.proposed.contains(&s.task)
                    && s.score
                        >= match self.verdict_for(view.nodes, s.task) {
                            NodeVerdict::Watch => self.watch_threshold,
                            _ => self.score_threshold,
                        }
            })
            .collect();
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.task.cmp(&b.task)));
        let mut remaining = view.clones_remaining;
        for candidate in candidates {
            if remaining == Some(0) {
                break;
            }
            if let Some(r) = remaining.as_mut() {
                *r -= 1;
            }
            self.proposed.insert(candidate.task);
            actions.push((candidate.task, MitigationAction::Clone));
        }
        actions
    }
}

/// The upper-bound baseline: knows each job's ground-truth stragglers
/// and clones exactly those, at the first barrier where each appears in
/// the scored view. Clone-only, so `JCT(oracle) ≤ JCT(no-mitigation)`
/// holds **structurally** (the simulator's `min(original, clone)` race
/// rule) — the gap between the oracle and a learned policy is the room
/// the predictor leaves on the table.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    stragglers: BTreeSet<usize>,
    proposed: BTreeSet<usize>,
}

impl OraclePolicy {
    /// An oracle for a job whose true stragglers are `stragglers`.
    #[must_use]
    pub fn new(stragglers: impl IntoIterator<Item = usize>) -> Self {
        OraclePolicy {
            stragglers: stragglers.into_iter().collect(),
            proposed: BTreeSet::new(),
        }
    }

    /// Builds the oracle from a job's ground truth at `quantile` (the
    /// paper's p90 labeling at `0.9`).
    #[must_use]
    pub fn for_job(job: &JobTrace, quantile: f64) -> Self {
        OraclePolicy::new(job.true_stragglers(job.straggler_threshold(quantile)))
    }
}

impl MitigationPolicy for OraclePolicy {
    fn name(&self) -> &str {
        "oracle"
    }

    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        let mut actions = Vec::new();
        for s in view.scores {
            if self.stragglers.contains(&s.task) && self.proposed.insert(s.task) {
                actions.push((s.task, MitigationAction::Clone));
            }
        }
        actions
    }
}

/// Factory for [`NoopPolicy`] — the no-mitigation baseline in factory
/// form, for wiring into [`nurd_serve::Engine::attach_mitigator`].
#[must_use]
pub fn noop_mitigator() -> MitigatorFactory {
    Box::new(|_spec| Box::new(NoopPolicy))
}

/// Factory giving every job a [`ThresholdClonePolicy`] with the given
/// knobs.
#[must_use]
pub fn threshold_mitigator(score_threshold: f64, budget: Option<usize>) -> MitigatorFactory {
    Box::new(move |_spec| Box::new(ThresholdClonePolicy::new(score_threshold, budget)))
}

/// Factory giving every job a [`TopKPolicy`] cloning at most `k` flagged
/// tasks per barrier.
#[must_use]
pub fn topk_mitigator(k: usize) -> MitigatorFactory {
    Box::new(move |_spec| Box::new(TopKPolicy::new(k)))
}

/// Factory giving every job a [`BandedClonePolicy`] with the given band.
#[must_use]
pub fn banded_mitigator(
    hi: f64,
    lo: f64,
    patience: usize,
    budget: Option<usize>,
) -> MitigatorFactory {
    Box::new(move |_spec| Box::new(BandedClonePolicy::new(hi, lo, patience, budget)))
}

/// Factory giving every job a [`NodeAwarePolicy`] over one shared frozen
/// verdict map (cloned per job).
#[must_use]
pub fn node_aware_mitigator(
    verdicts: BTreeMap<u32, NodeVerdict>,
    score_threshold: f64,
    watch_threshold: f64,
    budget: Option<usize>,
) -> MitigatorFactory {
    Box::new(move |_spec| {
        Box::new(NodeAwarePolicy::new(
            verdicts.clone(),
            score_threshold,
            watch_threshold,
            budget,
        ))
    })
}

/// Factory giving every job an [`OraclePolicy`] built from the fleet's
/// ground truth at `quantile`. Jobs not in `jobs` (never the case in the
/// harness) get an oracle with no stragglers, i.e. a no-op.
#[must_use]
pub fn oracle_mitigator(jobs: &[JobTrace], quantile: f64) -> MitigatorFactory {
    let labels: BTreeMap<u64, Vec<usize>> = jobs
        .iter()
        .map(|job| {
            (
                job.job_id(),
                job.true_stragglers(job.straggler_threshold(quantile)),
            )
        })
        .collect();
    Box::new(move |spec| {
        Box::new(OraclePolicy::new(
            labels.get(&spec.job).cloned().unwrap_or_default(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::{JobPhase, TaskScore};

    fn view<'a>(
        scores: &'a [TaskScore],
        flagged: &'a [usize],
        clones_remaining: Option<usize>,
    ) -> BarrierView<'a> {
        BarrierView {
            job: 1,
            ordinal: 0,
            time: 10.0,
            threshold: 100.0,
            phase: JobPhase::Scoring,
            scores,
            flagged,
            clones_remaining,
            nodes: None,
            backlog: 0,
        }
    }

    #[test]
    fn noop_never_acts() {
        let scores = [TaskScore {
            task: 0,
            score: 99.0,
        }];
        assert!(NoopPolicy.decide(&view(&scores, &[0], None)).is_empty());
    }

    #[test]
    fn threshold_policy_clones_best_first_within_budget() {
        let scores = [
            TaskScore {
                task: 0,
                score: 1.2,
            },
            TaskScore {
                task: 1,
                score: 3.0,
            },
            TaskScore {
                task: 2,
                score: 0.4,
            },
        ];
        let mut policy = ThresholdClonePolicy::new(1.0, Some(1));
        let actions = policy.decide(&view(&scores, &[0, 1], Some(1)));
        // Budget 1 goes to the highest score (task 1), not task 0.
        assert_eq!(actions, vec![(1, MitigationAction::Clone)]);
        // Next barrier: budget exhausted, nothing proposed.
        assert!(policy.decide(&view(&scores, &[], Some(0))).is_empty());
    }

    #[test]
    fn threshold_policy_never_reproposes_a_task() {
        let scores = [TaskScore {
            task: 5,
            score: 2.0,
        }];
        let mut policy = ThresholdClonePolicy::new(1.0, None);
        assert_eq!(policy.decide(&view(&scores, &[5], None)).len(), 1);
        assert!(policy.decide(&view(&scores, &[5], None)).is_empty());
    }

    #[test]
    fn topk_takes_k_newly_flagged_by_score() {
        let scores = [
            TaskScore {
                task: 0,
                score: 1.1,
            },
            TaskScore {
                task: 1,
                score: 1.5,
            },
            TaskScore {
                task: 2,
                score: 1.3,
            },
            TaskScore {
                task: 3,
                score: 9.0, // not flagged this barrier → not a candidate
            },
        ];
        let mut policy = TopKPolicy::new(2);
        let actions = policy.decide(&view(&scores, &[0, 1, 2], None));
        assert_eq!(
            actions,
            vec![(1, MitigationAction::Clone), (2, MitigationAction::Clone),]
        );
    }

    fn view_on_nodes<'a>(scores: &'a [TaskScore], nodes: &'a [u32]) -> BarrierView<'a> {
        BarrierView {
            nodes: Some(nodes),
            ..view(scores, &[], None)
        }
    }

    #[test]
    fn banded_clones_instantly_above_hi_and_never_below_lo() {
        let scores = [
            TaskScore {
                task: 0,
                score: 1.3,
            }, // above hi → instant
            TaskScore {
                task: 1,
                score: 0.3,
            }, // below lo → never
        ];
        let mut policy = BandedClonePolicy::new(1.0, 0.5, 2, None);
        assert_eq!(
            policy.decide(&view(&scores, &[], None)),
            vec![(0, MitigationAction::Clone)]
        );
        // Task 1 stays below lo forever: no streak, no clone.
        for _ in 0..5 {
            assert!(policy.decide(&view(&scores, &[], None)).is_empty());
        }
    }

    #[test]
    fn banded_catches_hoverers_after_patience() {
        let hover = [TaskScore {
            task: 4,
            score: 0.7,
        }];
        let mut policy = BandedClonePolicy::new(1.0, 0.5, 3, None);
        assert!(policy.decide(&view(&hover, &[], None)).is_empty());
        assert!(policy.decide(&view(&hover, &[], None)).is_empty());
        // Third consecutive in-band barrier: patience reached.
        assert_eq!(
            policy.decide(&view(&hover, &[], None)),
            vec![(4, MitigationAction::Clone)]
        );
    }

    #[test]
    fn banded_streak_resets_below_lo() {
        let hover = [TaskScore {
            task: 9,
            score: 0.8,
        }];
        let dip = [TaskScore {
            task: 9,
            score: 0.1,
        }];
        let mut policy = BandedClonePolicy::new(1.0, 0.5, 2, None);
        assert!(policy.decide(&view(&hover, &[], None)).is_empty());
        assert!(policy.decide(&view(&dip, &[], None)).is_empty()); // reset
        assert!(policy.decide(&view(&hover, &[], None)).is_empty()); // streak 1 again
        assert_eq!(policy.decide(&view(&hover, &[], None)).len(), 1);
    }

    #[test]
    fn node_aware_quarantines_sick_node_on_sight() {
        let scores = [
            TaskScore {
                task: 0,
                score: 0.1,
            }, // node 5 (quarantined): evicted, score unseen
            TaskScore {
                task: 1,
                score: 1.4,
            }, // node 2 (healthy): plain threshold clone
            TaskScore {
                task: 2,
                score: 0.1,
            }, // node 2: below threshold
        ];
        let verdicts = BTreeMap::from([(5, NodeVerdict::Quarantine), (2, NodeVerdict::Healthy)]);
        let mut policy = NodeAwarePolicy::new(verdicts, 1.0, 0.6, None);
        let actions = policy.decide(&view_on_nodes(&scores, &[5, 2, 2]));
        assert_eq!(
            actions,
            vec![
                (0, MitigationAction::Quarantine),
                (1, MitigationAction::Clone),
            ]
        );
        // Nothing is ever re-proposed.
        assert!(policy
            .decide(&view_on_nodes(&scores, &[5, 2, 2]))
            .is_empty());
    }

    #[test]
    fn node_aware_watch_nodes_clone_at_the_discount() {
        let scores = [
            TaskScore {
                task: 0,
                score: 0.7,
            }, // watch node: 0.7 >= 0.6
            TaskScore {
                task: 1,
                score: 0.7,
            }, // healthy node: 0.7 < 1.0
        ];
        let verdicts = BTreeMap::from([(3, NodeVerdict::Watch)]);
        let mut policy = NodeAwarePolicy::new(verdicts, 1.0, 0.6, None);
        assert_eq!(
            policy.decide(&view_on_nodes(&scores, &[3, 8])),
            vec![(0, MitigationAction::Clone)]
        );
    }

    #[test]
    fn node_aware_without_placement_is_pure_threshold() {
        let scores = [TaskScore {
            task: 0,
            score: 1.2,
        }];
        let verdicts = BTreeMap::from([(0, NodeVerdict::Quarantine)]);
        let mut policy = NodeAwarePolicy::new(verdicts, 1.0, 0.6, None);
        // No `nodes` in the view: the verdict map cannot apply.
        assert_eq!(
            policy.decide(&view(&scores, &[], None)),
            vec![(0, MitigationAction::Clone)]
        );
    }

    #[test]
    fn oracle_clones_exactly_its_labels() {
        let scores = [
            TaskScore {
                task: 0,
                score: 0.1,
            },
            TaskScore {
                task: 7,
                score: 0.2, // low score — the oracle doesn't care
            },
        ];
        let mut policy = OraclePolicy::new([7, 9]);
        let actions = policy.decide(&view(&scores, &[], None));
        assert_eq!(actions, vec![(7, MitigationAction::Clone)]);
        // Task 9 never appeared in a view; task 7 is never re-proposed.
        assert!(policy.decide(&view(&scores, &[], None)).is_empty());
    }
}
