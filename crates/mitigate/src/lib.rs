//! `nurd-mitigate` — score-driven straggler **mitigation** on top of the
//! serving engine, closing the loop the paper's §5 schedulers open:
//! instead of replaying flags offline, the live engine's per-barrier
//! straggler scores feed a [`nurd_data::MitigationPolicy`] whose typed
//! actions ([`nurd_data::MitigationAction`]) are committed to a per-job
//! action log, and a deterministic simulator
//! ([`nurd_sim::execute_actions`]) executes that log against ground
//! truth to price the decisions in job-completion time and wasted work.
//!
//! The crate ships:
//!
//! * **Policies** — [`NoopPolicy`] (the no-mitigation anchor),
//!   [`ThresholdClonePolicy`] (score threshold + per-job clone budget),
//!   [`BandedClonePolicy`] (two-sided threshold: instant clones above
//!   `hi`, patience-gated clones in the `[lo, hi)` dead band),
//!   [`TopKPolicy`] (k clones per barrier), [`OraclePolicy`] (ground
//!   truth; the structural upper bound), and [`NodeAwarePolicy`]
//!   (quarantines tasks on machines a frozen
//!   [`nurd_health::HealthAggregator`] verdict map convicted), each with
//!   a factory helper for [`nurd_serve::Engine::attach_mitigator`];
//! * **The fleet harness** — [`run_fleet`] drives traces through the
//!   engine with a policy attached and sims the committed log, returning
//!   per-job [`nurd_sim::MitigationOutcome`]s, a fleet
//!   [`nurd_sim::MitigationSummary`], and the canonical action log;
//!   [`run_node_fleet`] is the two-pass node-health loop (observe with
//!   the aggregator attached → freeze verdicts → mitigate node-aware).
//!
//! Everything is seed-deterministic end to end; `tests/policy_properties.rs`
//! pins the load-bearing invariants (every task completes exactly once,
//! the oracle never loses to no-mitigation, the action log is
//! bit-identical at shard counts {1, 2, 8}).

#![warn(missing_docs)]

mod harness;
mod policies;

pub use harness::{
    nurd_predictor_factory, run_fleet, run_node_fleet, FleetConfig, FleetRun, NodeFleetConfig,
    NodeFleetRun,
};
pub use policies::{
    banded_mitigator, node_aware_mitigator, noop_mitigator, oracle_mitigator, threshold_mitigator,
    topk_mitigator, BandedClonePolicy, NodeAwarePolicy, NoopPolicy, OraclePolicy,
    ThresholdClonePolicy, TopKPolicy,
};
