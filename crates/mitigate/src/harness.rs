//! The closed-loop fleet harness: traces → serving engine (scores →
//! policy → committed action log) → deterministic simulator → metrics.
//!
//! [`run_fleet`] is the one call the property suite, the bench sweep, and
//! the `mitigation_smoke` example all share. Determinism end to end: the
//! trace generator, the engine's per-job streams, every shipped policy,
//! and the simulator are all seed-deterministic, so the whole run — down
//! to the canonical action log — is bit-identical across shard counts.

use std::collections::BTreeMap;
use std::sync::Arc;

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_data::{ActionRecord, JobSpec, JobTrace};
use nurd_health::{HealthAggregator, HealthConfig, NodeVerdict};
use nurd_runtime::ThreadPool;
use nurd_serve::{
    Engine, EngineConfig, HealthObserver, JobReport, MitigatorFactory, PredictorFactory,
};
use nurd_sim::{
    execute_actions, summarize_mitigation, MitigationOutcome, MitigationSimConfig,
    MitigationSummary,
};

use crate::node_aware_mitigator;

/// Knobs for one [`run_fleet`] pass.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Engine shard count. Changes wall-clock only — the run's outputs,
    /// action log included, are identical at any value.
    pub shards: usize,
    /// Per-job straggler-threshold quantile (the paper's p90 at `0.9`).
    pub threshold_quantile: f64,
    /// Warmup quorum fraction before predictions start (the paper's 4%).
    pub warmup_fraction: f64,
    /// Arrival spread for the staggered fleet stream (`0.0` =
    /// simultaneous arrivals).
    pub spread: f64,
    /// Seed for the fleet stream's arrival stagger.
    pub stream_seed: u64,
    /// Simulator seed (clone/relaunch duration sampling).
    pub sim: MitigationSimConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            threshold_quantile: 0.9,
            warmup_fraction: 0.04,
            spread: 120.0,
            stream_seed: 0xF1EE7,
            sim: MitigationSimConfig::default(),
        }
    }
}

/// Everything one closed-loop fleet pass produced.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-job engine reports, job-id order.
    pub reports: Vec<JobReport>,
    /// The canonical fleet action log: each job's committed actions in
    /// decision order, jobs concatenated in job-id order. This is the
    /// artifact the bit-identical-across-shard-counts property compares.
    pub action_log: Vec<ActionRecord>,
    /// Per-job simulator outcomes, job-id order.
    pub outcomes: Vec<MitigationOutcome>,
    /// Fleet-level aggregation of `outcomes`.
    pub summary: MitigationSummary,
}

/// The harness's stock predictor factory: a fresh default-configured
/// [`NurdPredictor`] per job.
#[must_use]
pub fn nurd_predictor_factory() -> PredictorFactory {
    Box::new(|_spec: &JobSpec| Box::new(NurdPredictor::new(NurdConfig::default())))
}

/// Runs the whole loop once: serves `jobs` as a staggered fleet stream
/// through a caller-driven [`Engine`] with `mitigator` attached (`None` =
/// the no-mitigation baseline — not even a [`crate::NoopPolicy`], so the
/// engine takes its zero-overhead `predict` path), then executes every
/// job's committed action log in the simulator and aggregates.
///
/// # Panics
///
/// Panics if `jobs` is empty or a served job's report goes missing (both
/// indicate harness bugs, not workload conditions).
#[must_use]
pub fn run_fleet(
    jobs: &[JobTrace],
    mitigator: Option<MitigatorFactory>,
    config: &FleetConfig,
) -> FleetRun {
    run_fleet_observed(jobs, mitigator, None, config)
}

/// [`run_fleet`] with an optional [`HealthObserver`] attached before any
/// event is pushed — the observation pass of [`run_node_fleet`].
/// Attaching an observer is bit-invisible to the run's outputs (the
/// engine contract); it only fills the observer.
fn run_fleet_observed(
    jobs: &[JobTrace],
    mitigator: Option<MitigatorFactory>,
    observer: Option<Arc<dyn HealthObserver>>,
    config: &FleetConfig,
) -> FleetRun {
    assert!(!jobs.is_empty(), "fleet needs at least one job");
    let engine = Engine::new(
        EngineConfig {
            shards: config.shards,
            warmup_fraction: config.warmup_fraction,
            ..EngineConfig::default()
        },
        nurd_predictor_factory(),
    );
    if let Some(mitigator) = mitigator {
        assert!(engine.attach_mitigator(mitigator), "fresh engine");
    }
    if let Some(observer) = observer {
        assert!(engine.attach_observer(observer), "fresh engine");
    }
    let events = nurd_trace::staggered_fleet_events(
        jobs,
        config.threshold_quantile,
        config.spread,
        config.stream_seed,
    );
    engine.push_all_sync(events);
    let pool = ThreadPool::new(2);
    let report = engine.finish(&pool);

    let mut sorted: Vec<&JobTrace> = jobs.iter().collect();
    sorted.sort_by_key(|job| job.job_id());
    let outcomes: Vec<MitigationOutcome> = sorted
        .iter()
        .map(|job| {
            let reported = report.job(job.job_id()).expect("served job reported");
            execute_actions(
                job,
                job.straggler_threshold(config.threshold_quantile),
                &reported.actions,
                &config.sim,
            )
        })
        .collect();
    let action_log = report
        .jobs
        .iter()
        .flat_map(|r| r.actions.iter().copied())
        .collect();
    let summary = summarize_mitigation(&outcomes);
    FleetRun {
        reports: report.jobs,
        action_log,
        outcomes,
        summary,
    }
}

/// Knobs for the two-pass [`run_node_fleet`].
#[derive(Debug, Clone)]
pub struct NodeFleetConfig {
    /// The shared fleet knobs. Set
    /// [`MitigationSimConfig::node_resample`] here to price quarantines
    /// with node-correlated resampling (both passes use the same sim
    /// config, so comparisons stay apples-to-apples).
    pub fleet: FleetConfig,
    /// The aggregator's rate folding and verdict boundaries.
    pub health: HealthConfig,
    /// Clone threshold for healthy-node (and placement-less) tasks.
    pub score_threshold: f64,
    /// Lowered clone threshold for [`NodeVerdict::Watch`]-node tasks.
    pub watch_threshold: f64,
    /// Per-job clone budget for the mitigation pass.
    pub clone_budget: Option<usize>,
}

impl Default for NodeFleetConfig {
    fn default() -> Self {
        NodeFleetConfig {
            fleet: FleetConfig {
                sim: MitigationSimConfig {
                    node_resample: true,
                    ..MitigationSimConfig::default()
                },
                ..FleetConfig::default()
            },
            health: HealthConfig::default(),
            score_threshold: 1.0,
            watch_threshold: 0.6,
            clone_budget: Some(8),
        }
    }
}

/// Everything the two-pass node-health loop produced.
#[derive(Debug)]
pub struct NodeFleetRun {
    /// The aggregator after the observation pass — read
    /// [`HealthAggregator::rates`] for the full per-node statistics.
    pub aggregator: Arc<HealthAggregator>,
    /// The verdict map frozen between the passes (what the mitigation
    /// pass's [`crate::NodeAwarePolicy`] consulted).
    pub verdicts: BTreeMap<u32, NodeVerdict>,
    /// Pass 1: observation only (no mitigator) — also the unmitigated
    /// baseline for pricing pass 2.
    pub observed: FleetRun,
    /// Pass 2: [`crate::NodeAwarePolicy`] over the frozen verdicts.
    pub mitigated: FleetRun,
}

/// The closed **node-health** loop, two passes over the same fleet:
///
/// 1. **Observe** — serve the jobs with a fresh [`HealthAggregator`]
///    attached as the engine's [`HealthObserver`] and no mitigator; every
///    finalized job feeds per-node straggler truth into the aggregator.
/// 2. **Freeze & mitigate** — freeze [`HealthAggregator::verdicts`] into
///    a [`crate::NodeAwarePolicy`] and serve the same fleet again,
///    quarantining convicted machines' tasks and cloning the rest by
///    score; the committed log is priced by the simulator.
///
/// Freezing between passes (rather than reading the live aggregator
/// mid-run) is what keeps the mitigation pass's action log bit-identical
/// across shard counts — see [`crate::NodeAwarePolicy`]. Both passes are
/// seed-deterministic, so the whole `NodeFleetRun` is too.
#[must_use]
pub fn run_node_fleet(jobs: &[JobTrace], config: &NodeFleetConfig) -> NodeFleetRun {
    let aggregator = Arc::new(HealthAggregator::new(config.health.clone()));
    let observed = run_fleet_observed(
        jobs,
        None,
        Some(Arc::clone(&aggregator) as Arc<dyn HealthObserver>),
        &config.fleet,
    );
    let verdicts = aggregator.verdicts();
    let mitigated = run_fleet(
        jobs,
        Some(node_aware_mitigator(
            verdicts.clone(),
            config.score_threshold,
            config.watch_threshold,
            config.clone_budget,
        )),
        &config.fleet,
    );
    NodeFleetRun {
        aggregator,
        verdicts,
        observed,
        mitigated,
    }
}
