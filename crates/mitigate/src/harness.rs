//! The closed-loop fleet harness: traces → serving engine (scores →
//! policy → committed action log) → deterministic simulator → metrics.
//!
//! [`run_fleet`] is the one call the property suite, the bench sweep, and
//! the `mitigation_smoke` example all share. Determinism end to end: the
//! trace generator, the engine's per-job streams, every shipped policy,
//! and the simulator are all seed-deterministic, so the whole run — down
//! to the canonical action log — is bit-identical across shard counts.

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_data::{ActionRecord, JobSpec, JobTrace};
use nurd_runtime::ThreadPool;
use nurd_serve::{Engine, EngineConfig, JobReport, MitigatorFactory, PredictorFactory};
use nurd_sim::{
    execute_actions, summarize_mitigation, MitigationOutcome, MitigationSimConfig,
    MitigationSummary,
};

/// Knobs for one [`run_fleet`] pass.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Engine shard count. Changes wall-clock only — the run's outputs,
    /// action log included, are identical at any value.
    pub shards: usize,
    /// Per-job straggler-threshold quantile (the paper's p90 at `0.9`).
    pub threshold_quantile: f64,
    /// Warmup quorum fraction before predictions start (the paper's 4%).
    pub warmup_fraction: f64,
    /// Arrival spread for the staggered fleet stream (`0.0` =
    /// simultaneous arrivals).
    pub spread: f64,
    /// Seed for the fleet stream's arrival stagger.
    pub stream_seed: u64,
    /// Simulator seed (clone/relaunch duration sampling).
    pub sim: MitigationSimConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            threshold_quantile: 0.9,
            warmup_fraction: 0.04,
            spread: 120.0,
            stream_seed: 0xF1EE7,
            sim: MitigationSimConfig::default(),
        }
    }
}

/// Everything one closed-loop fleet pass produced.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-job engine reports, job-id order.
    pub reports: Vec<JobReport>,
    /// The canonical fleet action log: each job's committed actions in
    /// decision order, jobs concatenated in job-id order. This is the
    /// artifact the bit-identical-across-shard-counts property compares.
    pub action_log: Vec<ActionRecord>,
    /// Per-job simulator outcomes, job-id order.
    pub outcomes: Vec<MitigationOutcome>,
    /// Fleet-level aggregation of `outcomes`.
    pub summary: MitigationSummary,
}

/// The harness's stock predictor factory: a fresh default-configured
/// [`NurdPredictor`] per job.
#[must_use]
pub fn nurd_predictor_factory() -> PredictorFactory {
    Box::new(|_spec: &JobSpec| Box::new(NurdPredictor::new(NurdConfig::default())))
}

/// Runs the whole loop once: serves `jobs` as a staggered fleet stream
/// through a caller-driven [`Engine`] with `mitigator` attached (`None` =
/// the no-mitigation baseline — not even a [`crate::NoopPolicy`], so the
/// engine takes its zero-overhead `predict` path), then executes every
/// job's committed action log in the simulator and aggregates.
///
/// # Panics
///
/// Panics if `jobs` is empty or a served job's report goes missing (both
/// indicate harness bugs, not workload conditions).
#[must_use]
pub fn run_fleet(
    jobs: &[JobTrace],
    mitigator: Option<MitigatorFactory>,
    config: &FleetConfig,
) -> FleetRun {
    assert!(!jobs.is_empty(), "fleet needs at least one job");
    let engine = Engine::new(
        EngineConfig {
            shards: config.shards,
            warmup_fraction: config.warmup_fraction,
            ..EngineConfig::default()
        },
        nurd_predictor_factory(),
    );
    if let Some(mitigator) = mitigator {
        assert!(engine.attach_mitigator(mitigator), "fresh engine");
    }
    let events = nurd_trace::staggered_fleet_events(
        jobs,
        config.threshold_quantile,
        config.spread,
        config.stream_seed,
    );
    engine.push_all_sync(events);
    let pool = ThreadPool::new(2);
    let report = engine.finish(&pool);

    let mut sorted: Vec<&JobTrace> = jobs.iter().collect();
    sorted.sort_by_key(|job| job.job_id());
    let outcomes: Vec<MitigationOutcome> = sorted
        .iter()
        .map(|job| {
            let reported = report.job(job.job_id()).expect("served job reported");
            execute_actions(
                job,
                job.straggler_threshold(config.threshold_quantile),
                &reported.actions,
                &config.sim,
            )
        })
        .collect();
    let action_log = report
        .jobs
        .iter()
        .flat_map(|r| r.actions.iter().copied())
        .collect();
    let summary = summarize_mitigation(&outcomes);
    FleetRun {
        reports: report.jobs,
        action_log,
        outcomes,
        summary,
    }
}
