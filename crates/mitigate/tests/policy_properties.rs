//! The mitigation layer's load-bearing properties, over random fleets:
//!
//! 1. **No completion is ever lost or duplicated** — for every shipped
//!    policy (and the no-mitigation baseline), every task of every job
//!    finishes exactly once in the simulated mitigated run.
//! 2. **The oracle never loses** — clone-only mitigation with ground
//!    truth satisfies `JCT(mitigated) ≤ JCT(no-mitigation)` per job.
//! 3. **Bit-identical action logs across shard counts** — the canonical
//!    fleet action log at shards {1, 2, 8} is exactly equal, record for
//!    record, for every policy.

use nurd_data::JobTrace;
use nurd_mitigate::{
    noop_mitigator, oracle_mitigator, run_fleet, threshold_mitigator, topk_mitigator, FleetConfig,
};
use nurd_serve::MitigatorFactory;
use nurd_trace::{SuiteConfig, TraceStyle};
use proptest::prelude::*;

const QUANTILE: f64 = 0.9;

fn suite(seed: u64, jobs: usize) -> Vec<JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(jobs)
        .with_task_range(40, 60)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd_trace::generate_suite(&cfg)
}

/// Every policy under test, by name. `None` is the true no-mitigation
/// baseline (no policy attached at all).
fn mitigators(jobs: &[JobTrace]) -> Vec<(&'static str, Option<MitigatorFactory>)> {
    vec![
        ("none", None),
        ("noop", Some(noop_mitigator())),
        ("threshold", Some(threshold_mitigator(1.0, Some(4)))),
        ("top-k", Some(topk_mitigator(2))),
        ("oracle", Some(oracle_mitigator(jobs, QUANTILE))),
    ]
}

fn config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        ..FleetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn no_policy_ever_loses_or_duplicates_a_completion(seed in 0u64..1_000) {
        let jobs = suite(seed, 3);
        let mut sorted: Vec<&JobTrace> = jobs.iter().collect();
        sorted.sort_by_key(|j| j.job_id());
        for (name, mitigator) in mitigators(&jobs) {
            let run = run_fleet(&jobs, mitigator, &config(2));
            prop_assert_eq!(run.outcomes.len(), jobs.len());
            for (job, outcome) in sorted.iter().zip(&run.outcomes) {
                prop_assert_eq!(outcome.job, job.job_id());
                // Exactly one completion per task, task-id order: the
                // ledger is complete, duplicate-free, and gap-free.
                prop_assert_eq!(
                    outcome.completions.len(),
                    job.task_count(),
                    "policy {} lost completions", name
                );
                for (id, completion) in outcome.completions.iter().enumerate() {
                    prop_assert_eq!(completion.task, id, "policy {}", name);
                    prop_assert!(
                        completion.time.is_finite() && completion.time > 0.0,
                        "policy {} produced a degenerate completion", name
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_never_loses_to_no_mitigation(seed in 0u64..1_000) {
        let jobs = suite(seed, 3);
        let baseline = run_fleet(&jobs, None, &config(2));
        let oracle = run_fleet(&jobs, Some(oracle_mitigator(&jobs, QUANTILE)), &config(2));
        for (base, with) in baseline.outcomes.iter().zip(&oracle.outcomes) {
            prop_assert_eq!(base.job, with.job);
            // The unmitigated run is its own baseline...
            prop_assert_eq!(base.jct_mitigated, base.jct_baseline);
            // ...and clone-only oracle mitigation never exceeds it.
            prop_assert!(
                with.jct_mitigated <= base.jct_baseline,
                "oracle worsened job {}: {} > {}",
                with.job, with.jct_mitigated, base.jct_baseline
            );
        }
    }

    #[test]
    fn action_log_is_bit_identical_across_shard_counts(seed in 0u64..1_000) {
        let jobs = suite(seed, 3);
        for (name, _) in mitigators(&jobs) {
            // Fresh factories per shard count — factories are consumed.
            let runs: Vec<_> = [1usize, 2, 8]
                .iter()
                .map(|&shards| {
                    let mitigator = mitigators(&jobs)
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .expect("known name")
                        .1;
                    run_fleet(&jobs, mitigator, &config(shards))
                })
                .collect();
            prop_assert_eq!(
                &runs[0].action_log, &runs[1].action_log,
                "policy {}: shards 1 vs 2 diverged", name
            );
            prop_assert_eq!(
                &runs[0].action_log, &runs[2].action_log,
                "policy {}: shards 1 vs 8 diverged", name
            );
            // The full reports (scores, flags, actions) agree too.
            prop_assert_eq!(&runs[0].reports, &runs[1].reports);
            prop_assert_eq!(&runs[0].reports, &runs[2].reports);
        }
    }
}

#[test]
fn the_loop_actually_acts() {
    // Guard against vacuous properties (no policy ever deciding
    // anything): the oracle clones every caught straggler, and real
    // fleets have stragglers.
    let jobs = suite(0xAC7, 4);
    let run = run_fleet(&jobs, Some(oracle_mitigator(&jobs, QUANTILE)), &config(2));
    assert!(
        !run.action_log.is_empty(),
        "oracle never acted — the loop is broken"
    );
    assert!(run.summary.clones_issued > 0);
}
