//! Mitigation edge cases at the seams between engine, policy, and
//! simulator:
//!
//! * a clone whose target finished before the clone could start is void
//!   and free;
//! * a policy that ignores its own clone budget is reined in by the
//!   engine mid-barrier;
//! * `JobEnd` arriving with clones "in flight" still finalizes cleanly
//!   and preserves the committed action log;
//! * a mitigator attached through crash recovery produces exactly the
//!   action log of a never-crashed run.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use nurd_data::{
    job_stream, ActionRecord, BarrierView, JobTrace, MitigationAction, MitigationPolicy, TaskEvent,
};
use nurd_mitigate::{oracle_mitigator, run_fleet, threshold_mitigator, FleetConfig};
use nurd_serve::{
    EngineConfig, EngineService, FsyncPolicy, JobReport, MitigatorFactory, PersistenceConfig,
    ServiceConfig,
};
use nurd_sim::{execute_actions, MitigationSimConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

const QUANTILE: f64 = 0.9;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nurd-mitigate-{tag}-{}-{seq}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn suite(seed: u64, jobs: usize) -> Vec<JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(jobs)
        .with_task_range(40, 60)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd_trace::generate_suite(&cfg)
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        ..EngineConfig::default()
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        drain_workers: 2,
        drain_batch: 8,
    }
}

fn nurd_factory() -> nurd_serve::PredictorFactory {
    nurd_mitigate::nurd_predictor_factory()
}

#[test]
fn clone_for_a_task_that_finished_first_is_void_and_free() {
    // The engine only actions running tasks, so this log can only come
    // from a buggy or stale source — the simulator must still execute it
    // safely: no cost, no double completion, original latency stands.
    let job = &suite(0xF117, 1)[0];
    let threshold = job.straggler_threshold(QUANTILE);
    let latencies = job.latencies();
    let (fastest, &fastest_latency) = latencies
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty job");
    let stale = ActionRecord {
        job: job.job_id(),
        ordinal: 0,
        time: fastest_latency + 1.0, // after the task already finished
        task: fastest,
        action: MitigationAction::Clone,
    };
    let out = execute_actions(job, threshold, &[stale], &MitigationSimConfig::default());
    assert_eq!(out.void_actions, 1);
    assert_eq!(out.clones_issued, 0);
    assert_eq!(out.wasted_work, 0.0);
    assert_eq!(out.completions[fastest].time, fastest_latency);
    assert!(!out.completions[fastest].via_mitigation);
    assert_eq!(out.jct_mitigated, out.jct_baseline);
}

/// Declares a budget of 1 but proposes a clone for *every* scored task
/// at every barrier — the engine's per-job budget enforcement has to
/// suppress everything past the first, mid-barrier.
struct GreedyPolicy;

impl MitigationPolicy for GreedyPolicy {
    fn name(&self) -> &str {
        "greedy"
    }

    fn clone_budget(&self) -> Option<usize> {
        Some(1)
    }

    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)> {
        view.scores
            .iter()
            .map(|s| (s.task, MitigationAction::Clone))
            .collect()
    }
}

#[test]
fn engine_enforces_clone_budget_mid_barrier_against_a_greedy_policy() {
    let jobs = suite(0xB0D9, 3);
    let greedy: MitigatorFactory = Box::new(|_spec| Box::new(GreedyPolicy));
    let run = run_fleet(&jobs, Some(greedy), &FleetConfig::default());
    for report in &run.reports {
        let clones = report
            .actions
            .iter()
            .filter(|a| a.action == MitigationAction::Clone)
            .count();
        assert!(
            clones <= 1,
            "job {}: budget 1 but {clones} clones committed",
            report.job
        );
    }
    // The budget bound actually bit: a greedy policy on a real fleet
    // proposes far more than one clone per job.
    assert!(run.reports.iter().any(|r| !r.actions.is_empty()));

    // And the honest threshold policy respects a larger budget the same
    // way, without engine suppression having to step in.
    let run = run_fleet(
        &jobs,
        Some(threshold_mitigator(0.5, Some(3))),
        &FleetConfig::default(),
    );
    for report in &run.reports {
        assert!(report.actions.len() <= 3, "job {}", report.job);
    }
}

#[test]
fn job_end_with_clones_in_flight_finalizes_cleanly() {
    let job = &suite(0xE2D, 1)[0];
    let full = job_stream(job, QUANTILE);
    // Cut the stream right after its third barrier — actions committed
    // there are still "in flight" (their targets unresolved) — and end
    // the job on the spot.
    let mut barriers = 0;
    let mut events: Vec<TaskEvent> = Vec::new();
    let mut cut_time = 0.0;
    for event in full {
        let barrier_time = match event {
            TaskEvent::Barrier { time, .. } => Some(time),
            TaskEvent::JobEnd { .. } => break,
            _ => None,
        };
        events.push(event);
        if let Some(time) = barrier_time {
            barriers += 1;
            cut_time = time;
            if barriers == 3 {
                break;
            }
        }
    }
    events.push(TaskEvent::JobEnd {
        job: job.job_id(),
        time: cut_time,
    });

    let service = EngineService::start(engine_config(), service_config(), nurd_factory());
    assert!(service.attach_mitigator(oracle_mitigator(std::slice::from_ref(job), QUANTILE)));
    assert_eq!(service.push_all(events.iter().cloned()), events.len());
    let report = service.close();
    let job_report = report.job(job.job_id()).expect("finalized by JobEnd");
    assert_eq!(job_report.finalized, nurd_serve::FinalizeReason::JobEnd);

    // The committed action log survives finalization and executes to a
    // complete, duplicate-free ledger even though the stream was cut.
    let out = execute_actions(
        job,
        job.straggler_threshold(QUANTILE),
        &job_report.actions,
        &MitigationSimConfig::default(),
    );
    assert_eq!(out.completions.len(), job.task_count());
    assert!(out.jct_mitigated <= out.jct_baseline);
}

fn sorted_actions(reports: &[JobReport]) -> Vec<ActionRecord> {
    reports.iter().flat_map(|r| r.actions.clone()).collect()
}

#[test]
fn recovered_service_decides_exactly_like_a_never_crashed_one() {
    let jobs = suite(0x2EC0, 3);
    let events = nurd_trace::staggered_fleet_events(&jobs, QUANTILE, 120.0, 7);

    // Reference: one uninterrupted mitigated service.
    let reference = EngineService::start(engine_config(), service_config(), nurd_factory());
    assert!(reference.attach_mitigator(oracle_mitigator(&jobs, QUANTILE)));
    assert_eq!(reference.push_all(events.iter().cloned()), events.len());
    let expected = sorted_actions(&reference.close().jobs);
    assert!(!expected.is_empty(), "reference run never acted — vacuous");

    // Crashed-and-recovered: push a prefix, drop without close (the Drop
    // guard flushes WALs — a crash with a flushed tail), then recover
    // *with* the mitigator and push the rest.
    let dir = scratch_dir("recover");
    let persistence = PersistenceConfig {
        fsync: FsyncPolicy::Always,
        ..PersistenceConfig::new(&dir)
    };
    let service = EngineService::start_persistent(
        engine_config(),
        service_config(),
        persistence.clone(),
        nurd_factory(),
    )
    .unwrap();
    assert!(service.attach_mitigator(oracle_mitigator(&jobs, QUANTILE)));
    let split = events.len() / 2;
    assert_eq!(service.push_all(events[..split].iter().cloned()), split);
    service.quiesce();
    drop(service);

    let (service, recovered) = EngineService::recover_with_mitigator(
        persistence,
        engine_config(),
        service_config(),
        nurd_factory(),
        oracle_mitigator(&jobs, QUANTILE),
    )
    .unwrap();
    // Resume each job's stream past its durable prefix.
    let mut position: BTreeMap<u64, u64> = BTreeMap::new();
    for event in &events {
        let slot = position.entry(event.job()).or_insert(0);
        let index = *slot;
        *slot += 1;
        if index
            < recovered
                .events_seen
                .get(&event.job())
                .copied()
                .unwrap_or(0)
        {
            continue;
        }
        assert!(service.push(event.clone()), "push on recovered service");
    }
    let got = sorted_actions(&service.close().jobs);
    assert_eq!(
        got, expected,
        "recovery changed the action log — restart ≠ uninterrupted"
    );
    std::fs::remove_dir_all(&dir).ok();
}
