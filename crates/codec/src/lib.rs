//! `nurd-codec` — a dependency-free binary codec for checkpointable state.
//!
//! The serving engine persists its in-memory state (predictor ensembles,
//! per-job replay bookkeeping, shard counters) across process restarts.
//! This container is offline — no `serde`, no `bincode` — so the repo
//! carries its own codec: a deliberately small, versioned, little-endian
//! byte format with three layers:
//!
//! 1. **Primitives** — [`Encoder`] / [`Decoder`] read and write fixed-
//!    width little-endian integers, `f64` via [`f64::to_bits`] (bit-exact
//!    round-trips, NaN payloads included — the engine's determinism
//!    contract is bit-for-bit, so the codec must be too), and
//!    length-prefixed byte strings.
//! 2. **Structures** — the [`Checkpointable`] trait, implemented by every
//!    persistable type in `nurd-data`, `nurd-ml`, `nurd-core`, and
//!    `nurd-serve`, with blanket impls for `Option<T>`, `Vec<T>`, and
//!    `BTreeMap<K, V>` so implementations compose mechanically.
//! 3. **Records** — [`write_frame`] / [`read_frame`] wrap a payload in
//!    `[len: u32][crc32: u32][payload]` framing for append-only files.
//!    A torn tail (the write was cut mid-record by a crash) and a
//!    bit-flipped record (checksum mismatch) are *distinguishable*,
//!    typed conditions — never a panic, never silent garbage.
//!
//! File-level magic numbers and format versions belong to the file
//! formats themselves (`nurd-serve`'s snapshot and WAL modules); this
//! crate only promises that a value encoded by version `N` of a
//! `Checkpointable` impl decodes bit-identically under the same impl.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Why a decode failed. Decoding never panics on malformed input — a
/// truncated or corrupted buffer surfaces as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// An enum tag byte had no defined meaning.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the bytes remaining (corrupt or hostile
    /// input — honoring it would over-allocate).
    LengthOverrun {
        /// The declared element count.
        declared: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of buffer: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::LengthOverrun {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds {remaining} remaining bytes"
                )
            }
            CodecError::InvalidUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink for encoding. All integers are little-endian;
/// `usize` travels as `u64` so 32- and 64-bit builds interoperate.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes encoded so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning its buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by its IEEE-754 bit pattern (bit-exact, NaN
    /// payloads preserved).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over an encoded buffer for decoding. Every `take_*` is bounds-
/// checked and returns [`CodecError::UnexpectedEof`] instead of panicking.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` (encoded as `u64`).
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        Ok(self.take_u64()? as usize)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool` (any nonzero byte is `true`).
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.take_u8()? != 0)
    }

    /// Reads a length prefix that will gate `per_item`-byte reads,
    /// guarding against corrupt lengths that would over-allocate: the
    /// declared count must fit the remaining bytes at `per_item` bytes
    /// (or more) each.
    pub fn take_len(&mut self, per_item: usize) -> Result<usize, CodecError> {
        let declared = self.take_u64()?;
        let min_bytes = declared.saturating_mul(per_item.max(1) as u64);
        if min_bytes > self.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared,
                remaining: self.remaining(),
            });
        }
        Ok(declared as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.take_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| CodecError::InvalidUtf8)
    }
}

/// A type that round-trips through the binary codec, bit-for-bit.
///
/// Implementations live next to the types they serialize (private fields
/// stay private); format evolution is handled at the *file* level
/// (magic and version headers in `nurd-serve`), so an impl only ever
/// has to read what it wrote.
pub trait Checkpointable: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes one value from `dec`, consuming exactly the bytes
    /// [`Checkpointable::encode`] produced.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or malformed input — never a panic.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

macro_rules! primitive_checkpointable {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Checkpointable for $ty {
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
                dec.$take()
            }
        }
    };
}

primitive_checkpointable!(u8, put_u8, take_u8);
primitive_checkpointable!(u32, put_u32, take_u32);
primitive_checkpointable!(u64, put_u64, take_u64);
primitive_checkpointable!(usize, put_usize, take_usize);
primitive_checkpointable!(f64, put_f64, take_f64);
primitive_checkpointable!(bool, put_bool, take_bool);

impl Checkpointable for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(dec.take_str()?.to_owned())
    }
}

impl<T: Checkpointable> Checkpointable for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            tag => Err(CodecError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Checkpointable> Checkpointable for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Every element costs at least one byte, which bounds the
        // pre-allocation a corrupt length can demand.
        let len = dec.take_len(1)?;
        let mut out = Vec::with_capacity(len.min(dec.remaining()));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<K: Checkpointable + Ord, V: Checkpointable> Checkpointable for BTreeMap<K, V> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for (k, v) in self {
            k.encode(enc);
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = dec.take_len(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(dec)?;
            let v = V::decode(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` checksum) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Why a framed record could not be read back.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The file ended mid-record — the classic *torn write* left by a
    /// crash between a record's first byte and its last. Everything
    /// before this record is intact; the tail is discarded.
    Torn,
    /// The record is complete but its checksum does not match — a bit
    /// flip or an overwrite, not a clean truncation.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Torn => write!(f, "torn record: file ended mid-frame"),
            FrameError::Corrupt => write!(f, "corrupt record: checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Upper bound on a single framed record (a length prefix beyond this is
/// treated as corruption rather than honored with a giant allocation).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Writes one `[len: u32][crc32: u32][payload]` record.
///
/// # Errors
///
/// Propagates the writer's I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_FRAME_LEN));
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads back one framed record. `Ok(None)` is a *clean* end of file
/// (the reader produced zero bytes exactly at a record boundary) —
/// anything else that falls short is [`FrameError::Torn`], and a
/// complete record whose checksum disagrees is [`FrameError::Corrupt`].
///
/// # Errors
///
/// [`FrameError`] as described above.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 8];
    match read_exact_or_eof(r, &mut header)? {
        Fill::CleanEof => return Ok(None),
        Fill::Short => return Err(FrameError::Torn),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Corrupt);
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Fill::Full => {}
        Fill::CleanEof | Fill::Short => return Err(FrameError::Torn),
    }
    if crc32(&payload) != crc {
        return Err(FrameError::Corrupt);
    }
    Ok(Some(payload))
}

enum Fill {
    Full,
    CleanEof,
    Short,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Fill, std::io::Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(Fill::CleanEof),
            0 => return Ok(Fill::Short),
            n => filled += n,
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_usize(42);
        enc.put_f64(-0.0);
        enc.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        enc.put_bool(true);
        enc.put_str("straggler");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert_eq!(dec.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        assert_eq!(dec.take_usize().unwrap(), 42);
        assert_eq!(dec.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.take_f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(dec.take_bool().unwrap());
        assert_eq!(dec.take_str().unwrap(), "straggler");
        assert!(dec.is_empty());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(f64::INFINITY)];
        let mut m = BTreeMap::new();
        m.insert(3u64, vec![true, false]);
        m.insert(9u64, vec![]);
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        m.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<Option<f64>>::decode(&mut dec).unwrap(), v);
        assert_eq!(BTreeMap::<u64, Vec<bool>>::decode(&mut dec).unwrap(), m);
        assert!(dec.is_empty());
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut enc = Encoder::new();
        enc.put_u64(123);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(matches!(
            dec.take_u64(),
            Err(CodecError::UnexpectedEof {
                needed: 8,
                remaining: 5
            })
        ));
        let mut dec = Decoder::new(&[2u8]);
        assert!(matches!(
            Option::<u64>::decode(&mut dec),
            Err(CodecError::InvalidTag {
                what: "Option",
                tag: 2
            })
        ));
        // A corrupt Vec length larger than the buffer must not allocate.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            Vec::<u8>::decode(&mut dec),
            Err(CodecError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frames_round_trip_and_detect_torn_and_corrupt_tails() {
        let mut file = Vec::new();
        write_frame(&mut file, b"alpha").unwrap();
        write_frame(&mut file, b"").unwrap();
        write_frame(&mut file, b"gamma-record").unwrap();

        let mut r = &file[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"gamma-record");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Torn tail: cut the last record mid-payload.
        let torn = &file[..file.len() - 3];
        let mut r = torn;
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(matches!(read_frame(&mut r), Err(FrameError::Torn)));

        // Bit flip in the last payload byte: checksum mismatch.
        let mut flipped = file.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let mut r = &flipped[..];
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(matches!(read_frame(&mut r), Err(FrameError::Corrupt)));
    }
}
