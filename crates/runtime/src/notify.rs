//! Park/unpark for workers that watch *many* queues.
//!
//! A drain worker polls a set of [`crate::Channel`]s; when all are empty
//! it should sleep — but not on any single channel's condvar, because
//! work can arrive on any of them. [`Notifier`] is the shared wake-up
//! point: producers [`unpark`](Notifier::unpark) after every enqueue, and
//! an idle worker [`park`](Notifier::park)s against the epoch it observed
//! *before* its last scan, so a wake-up that races the scan is never
//! lost (the same generation-counter discipline as the pool's internal
//! sleep state in [`crate::ThreadPool`]).
//!
//! The protocol:
//!
//! ```
//! use nurd_runtime::Notifier;
//! # let notifier = Notifier::new();
//! # let mut scans = 0;
//! # let mut scan_all_queues = || { scans += 1; scans > 1 };
//! # std::thread::scope(|s| { s.spawn(|| {
//! # std::thread::sleep(std::time::Duration::from_millis(5));
//! # notifier.unpark(); });
//! loop {
//!     let epoch = notifier.epoch();   // 1. snapshot BEFORE scanning
//!     let found_work = scan_all_queues();
//!     if found_work {
//!         break;                      // (or: process it and rescan)
//!     }
//!     notifier.park(epoch);           // 2. sleeps only if nothing was
//!                                     //    enqueued since the snapshot
//! }
//! # });
//! ```

use std::sync::{Condvar, Mutex};

/// An epoch-counting park/unpark primitive — see the module docs for
/// the lost-wakeup-free protocol.
#[derive(Default)]
pub struct Notifier {
    epoch: Mutex<u64>,
    wake: Condvar,
}

impl std::fmt::Debug for Notifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notifier")
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Notifier {
    /// A fresh notifier at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        Notifier::default()
    }

    /// The current epoch. Snapshot this *before* checking for work; pass
    /// it to [`Notifier::park`] afterwards.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("notifier poisoned")
    }

    /// Advances the epoch and wakes every parked thread. Called by
    /// producers after enqueueing and by shutdown paths after flipping
    /// their flag.
    pub fn unpark(&self) {
        let mut epoch = self.epoch.lock().expect("notifier poisoned");
        *epoch = epoch.wrapping_add(1);
        drop(epoch);
        self.wake.notify_all();
    }

    /// Blocks while the epoch still equals `seen`. Returns immediately if
    /// any [`Notifier::unpark`] happened since `seen` was read — which is
    /// exactly what makes the snapshot-scan-park protocol race-free.
    pub fn park(&self, seen: u64) {
        let mut epoch = self.epoch.lock().expect("notifier poisoned");
        while *epoch == seen {
            epoch = self.wake.wait(epoch).expect("notifier condvar poisoned");
        }
    }

    /// Like [`Notifier::park`], but gives up after `timeout` even if no
    /// [`Notifier::unpark`] arrived. Returns `true` if woken by an unpark
    /// (the epoch moved past `seen`) and `false` on timeout. Periodic
    /// housekeeping workers — e.g. a background WAL flusher — use this to
    /// wake on a cadence while still reacting promptly to shutdown.
    pub fn park_timeout(&self, seen: u64, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut epoch = self.epoch.lock().expect("notifier poisoned");
        while *epoch == seen {
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _timed_out) = self
                .wake
                .wait_timeout(epoch, left)
                .expect("notifier condvar poisoned");
            epoch = guard;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn park_returns_immediately_on_a_stale_epoch() {
        let n = Notifier::new();
        let seen = n.epoch();
        n.unpark();
        n.park(seen); // must not block: epoch moved after the snapshot
    }

    #[test]
    fn unpark_wakes_a_parked_thread() {
        let n = Arc::new(Notifier::new());
        let woke = Arc::new(AtomicBool::new(false));
        let parked = {
            let n = Arc::clone(&n);
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                let seen = n.epoch();
                n.park(seen);
                woke.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!woke.load(Ordering::SeqCst), "parked too briefly");
        n.unpark();
        parked.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn park_timeout_expires_without_an_unpark() {
        let n = Notifier::new();
        let seen = n.epoch();
        let woke = n.park_timeout(seen, std::time::Duration::from_millis(5));
        assert!(!woke, "nothing unparked, so the wait must time out");
    }

    #[test]
    fn park_timeout_reports_a_real_wakeup() {
        let n = Notifier::new();
        let seen = n.epoch();
        n.unpark();
        let woke = n.park_timeout(seen, std::time::Duration::from_secs(5));
        assert!(woke, "epoch moved past the snapshot, so this is a wakeup");
    }

    #[test]
    fn racing_unpark_between_snapshot_and_park_is_not_lost() {
        // Deterministic re-creation of the race: snapshot, then an unpark
        // lands, then park — park must fall straight through.
        let n = Notifier::new();
        for _ in 0..100 {
            let seen = n.epoch();
            n.unpark();
            n.park(seen);
        }
    }
}
