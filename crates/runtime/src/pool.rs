//! The thread pool, scoped fork-join, and chunked parallel-for.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::{Deque, Stealer};

/// A unit of queued work. Scoped tasks are lifetime-erased into this
/// `'static` form; soundness is restored by [`ThreadPool::scope`], which
/// never returns before every task it spawned has run to completion.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The ingress queue for tasks spawned from threads *outside* the pool.
///
/// This is deliberately **not** a Chase–Lev [`Deque`]: that algorithm's
/// push end is single-owner by contract, while the injector is pushed by
/// arbitrary producer threads. A plain mutexed FIFO is correct here and
/// cheap enough — external spawns are the rare path (per scoring batch /
/// per refit, not per task), and workers fall back to it only after
/// their own lock-free deque is empty.
struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, item: T) {
        self.queue
            .lock()
            .expect("injector poisoned")
            .push_back(item);
    }

    fn steal(&self) -> Option<T> {
        self.queue.lock().expect("injector poisoned").pop_front()
    }
}

/// Wake-up bookkeeping: every task push bumps `generation` under the
/// mutex, so a worker that observed empty queues at generation `g` can
/// sleep until the generation moves — the push-then-notify and
/// check-then-wait orders can never interleave into a lost wake-up.
struct SleepState {
    generation: u64,
    shutdown: bool,
}

struct Shared {
    /// Tasks injected from threads outside the pool.
    injector: Injector<Task>,
    /// Steal handles onto each worker's Chase–Lev deque. The owner ends
    /// live on the workers' stacks (see [`worker_loop`]); everyone else
    /// reaches a worker's queue only through these.
    stealers: Vec<Stealer<Task>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
}

impl Shared {
    /// Bumps the generation and wakes sleeping workers.
    fn notify(&self) {
        let mut state = self.sleep.lock().expect("sleep state poisoned");
        state.generation = state.generation.wrapping_add(1);
        drop(state);
        self.wake.notify_all();
    }

    /// Grabs a task as worker `me` would: own deque first (LIFO pop),
    /// then the injector, then the other workers' deques (FIFO steals).
    /// `me == None` is an external helper thread: injector, then steals.
    ///
    /// Idle-scan audit (the `Deque::len` contract): this scan never
    /// consults `len()`/`is_empty()` — emptiness is only ever concluded
    /// from a failed `pop`/`steal` *attempt*, and a `None` that races a
    /// concurrent push is repaired by the generation sleep protocol in
    /// [`worker_loop`] (the push's `notify` bumps the generation the
    /// sleeper pinned before its re-check). Nothing in the pool relies
    /// on the advisory counters being exact.
    fn find_task(&self, me: Option<(usize, &Deque<Task>)>) -> Option<Task> {
        if let Some((_, own)) = me {
            if let Some(t) = own.pop() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.steal() {
            return Some(t);
        }
        let n = self.stealers.len();
        let mine = me.map(|(i, _)| i);
        let start = mine.map_or(0, |i| i + 1);
        for off in 0..n {
            let j = (start + off) % n;
            if Some(j) == mine {
                continue;
            }
            if let Some(t) = self.stealers[j].steal() {
                return Some(t);
            }
        }
        None
    }
}

/// Pool-worker identity stashed in TLS: which pool, which worker index,
/// and a pointer to the worker's own stack-resident [`Deque`] so tasks
/// spawned from inside the worker can push straight onto it.
#[derive(Clone, Copy)]
struct WorkerTls {
    /// `Arc::as_ptr` of the pool's `Shared`, as an identity token.
    pool: usize,
    index: usize,
    /// Points into the live `worker_loop` frame of *this* thread. Only
    /// dereferenced from this same thread, while `worker_loop` is on the
    /// stack below us — see the SAFETY comments at the deref sites.
    deque: *const Deque<Task>,
}

thread_local! {
    /// Worker identity for pool worker threads, so tasks spawned from
    /// inside a worker land on that worker's own deque.
    static WORKER: Cell<Option<WorkerTls>> = const { Cell::new(None) };
}

/// The calling thread's deque handle for `shared`'s pool, if the caller
/// is one of its workers.
///
/// The returned reference is tied to the TLS pointer set by
/// [`worker_loop`]; see the SAFETY argument there.
fn own_deque(shared: &Shared) -> Option<(usize, &Deque<Task>)> {
    let tls = WORKER.with(Cell::get)?;
    if tls.pool != std::ptr::from_ref(shared) as usize {
        return None;
    }
    // SAFETY: the TLS entry was set by `worker_loop` on this very
    // thread, pointing at a deque owned by its stack frame. Everything
    // the pool runs on a worker (tasks, and scopes/spawns made from
    // inside tasks) executes synchronously *inside* that frame, so the
    // frame — and the deque — outlive any borrow we hand out here.
    Some((tls.index, unsafe { &*tls.deque }))
}

/// A fixed-size work-stealing thread pool.
///
/// `threads` counts **total** concurrency including the thread that calls
/// [`ThreadPool::scope`] / [`ThreadPool::par_for_chunks`]: the pool spawns
/// `threads - 1` background workers and the calling thread helps execute
/// tasks while it waits for a scope to finish. `ThreadPool::new(1)` spawns
/// no threads at all and runs every task inline — callers can therefore
/// thread a pool through unconditionally and let size 1 mean "sequential".
///
/// Dropping the pool joins all workers. Scopes never leave tasks behind,
/// so shutdown cannot strand queued work.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total parallelism (clamped to ≥ 1);
    /// see the type-level docs for what the count includes.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        // Each worker *owns* its Chase–Lev deque (the algorithm's push/pop
        // end is single-owner); the pool keeps only the steal handles.
        let deques: Vec<Deque<Task>> = (0..workers).map(|_| Deque::new()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers: deques.iter().map(Deque::stealer).collect(),
            sleep: Mutex::new(SleepState {
                generation: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nurd-runtime-{index}"))
                    .spawn(move || worker_loop(&shared, index, deque))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Creates a pool sized to the machine
    /// ([`std::thread::available_parallelism`], falling back to 1).
    #[must_use]
    pub fn with_default_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, usize::from);
        ThreadPool::new(threads)
    }

    /// Total parallelism of the pool (background workers + the helping
    /// caller thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a scoped fork-join region: `f` receives a [`Scope`] whose
    /// [`Scope::spawn`] accepts closures that may borrow anything that
    /// outlives this call. `scope` returns only after every spawned task
    /// has completed; the calling thread executes pool tasks while it
    /// waits. The first panic from a spawned task (or from `f` itself) is
    /// resumed on the caller once all tasks have finished.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::new(ScopeState {
                sync: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            scope_marker: PhantomData,
            env_marker: PhantomData,
        };
        // Even if `f` panics, already-spawned tasks still borrow the
        // caller's stack — the wait below must happen before unwinding.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.help_until_done();
        let task_panic = scope
            .state
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        match (result, task_panic) {
            (Err(payload), _) => resume_unwind(payload),
            (Ok(_), Some(payload)) => resume_unwind(payload),
            (Ok(value), None) => value,
        }
    }

    /// Splits `0..len` into at most `max_chunks` contiguous, near-equal
    /// ranges and runs `f` on each concurrently (the calling thread
    /// participates). Chunk boundaries depend only on `(len, max_chunks)`,
    /// never on scheduling **or pool size** — a single-thread pool runs
    /// the identical chunk sequence inline — so a loop whose chunks write
    /// disjoint outputs (or whose per-chunk results are combined in chunk
    /// order) is deterministic across pool sizes. With `max_chunks <= 1`
    /// or an empty range, `f` runs once over `0..len` on the caller.
    pub fn par_for_chunks<F>(&self, len: usize, max_chunks: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let chunks = max_chunks.min(len);
        if chunks <= 1 {
            f(0..len);
            return;
        }
        let base = len / chunks;
        let extra = len % chunks;
        let bounds = (0..chunks).scan(0usize, |start, i| {
            let end = *start + base + usize::from(i < extra);
            let range = *start..end;
            *start = end;
            Some(range)
        });
        if self.threads == 1 {
            for range in bounds {
                f(range);
            }
            return;
        }
        self.scope(|s| {
            let f = &f;
            for range in bounds {
                s.spawn(move || f(range));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.sleep.lock().expect("sleep state poisoned");
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize, deque: Deque<Task>) {
    // Publish this worker's identity — including a pointer to the deque
    // now owned by this stack frame — so `Scope::spawn` and
    // `help_until_done`, when called from tasks running here, can reach
    // the owner end. The pointer never escapes this thread (TLS), and
    // every deref happens inside `task()` calls below, i.e. while this
    // frame is live.
    WORKER.with(|w| {
        w.set(Some(WorkerTls {
            pool: Arc::as_ptr(shared) as usize,
            index,
            deque: std::ptr::addr_of!(deque),
        }));
    });
    let me = Some((index, &deque));
    loop {
        if let Some(task) = shared.find_task(me) {
            task();
            continue;
        }
        // Record the generation *before* re-checking the queues: any push
        // that raced with the check bumps it and the wait falls through.
        let seen = {
            let state = shared.sleep.lock().expect("sleep state poisoned");
            if state.shutdown {
                return;
            }
            state.generation
        };
        if let Some(task) = shared.find_task(me) {
            task();
            continue;
        }
        let mut state = shared.sleep.lock().expect("sleep state poisoned");
        while state.generation == seen && !state.shutdown {
            state = shared.wake.wait(state).expect("sleep condvar poisoned");
        }
        if state.shutdown {
            return;
        }
    }
}

/// Join-latch shared between a scope and its spawned tasks: the pending
/// count behind `sync`, a condvar for the final wake, and the first
/// captured panic.
struct ScopeState {
    sync: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn task_finished(&self, payload: Option<Box<dyn Any + Send + 'static>>) {
        if let Some(p) = payload {
            let mut slot = self.panic.lock().expect("scope panic slot poisoned");
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        let mut pending = self.sync.lock().expect("scope latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Handle for spawning borrow-carrying tasks inside
/// [`ThreadPool::scope`]; see there for the lifetime contract.
pub struct Scope<'scope, 'env: 'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariance over `'scope` (mirrors [`std::thread::Scope`]): spawned
    /// closures must live exactly as long as the scope says, no variance
    /// shenanigans.
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` onto the pool. The closure may borrow from the
    /// environment of the enclosing [`ThreadPool::scope`] call; it is
    /// guaranteed to have finished when that call returns. A panicking
    /// task does not tear down the pool — the payload is captured and
    /// resumed on the scope's caller.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.sync.lock().expect("scope latch poisoned") += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            state.task_finished(outcome.err());
        });
        // SAFETY: lifetime erasure only. The task may borrow data from
        // `'scope`, but `ThreadPool::scope` blocks (helping) until the
        // pending count this task decrements reaches zero — on the normal
        // path *and* on the unwind path — so the closure can never run
        // after its borrows expire. The fat-pointer layout of
        // `Box<dyn FnOnce>` is lifetime-independent.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        match own_deque(&self.shared) {
            // Spawning from a worker of this pool: push onto its own
            // deque (LIFO — cache-warm, depth-first). Sound because we
            // *are* the owner thread here (see `own_deque`).
            Some((_, own)) => own.push(task),
            _ => self.shared.injector.push(task),
        }
        self.shared.notify();
    }

    /// Runs pool tasks on the calling thread until every task spawned in
    /// this scope has completed.
    fn help_until_done(&self) {
        let me = own_deque(&self.shared);
        loop {
            if let Some(task) = self.shared.find_task(me) {
                task();
                continue;
            }
            let pending = self.state.sync.lock().expect("scope latch poisoned");
            if *pending == 0 {
                return;
            }
            // Our remaining tasks are running on other threads (queues
            // are empty): sleep until the last one flips the latch. New
            // tasks they spawn are executed by awake workers.
            let _pending = self
                .state
                .done
                .wait(pending)
                .expect("scope done condvar poisoned");
        }
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish()
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide shared pool, lazily created at machine parallelism
/// ([`ThreadPool::with_default_parallelism`]). Compute layers that take a
/// thread-count knob rather than a pool handle (e.g.
/// `nurd_ml::TreeConfig`) schedule their chunks here.
#[must_use]
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(ThreadPool::with_default_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_spawn_and_supports_borrows() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_scopes_from_worker_tasks_complete() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    // A task running on a worker opens its own scope; the
                    // worker helps drain it without deadlocking.
                    global().scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn par_for_chunks_covers_range_exactly_once() {
        let pool = ThreadPool::new(4);
        for (len, chunks) in [(0usize, 3usize), (1, 4), (7, 3), (100, 4), (10, 100)] {
            let seen: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.par_for_chunks(len, chunks, |range| {
                for i in range {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                seen.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "len {len} chunks {chunks}"
            );
        }
    }

    #[test]
    fn par_for_chunks_matches_sequential_sum() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..10_000).map(|i| f64::from(i) * 0.25).collect();
        let partials = Mutex::new(Vec::new());
        pool.par_for_chunks(data.len(), 8, |range| {
            let sum: f64 = data[range.clone()].iter().sum();
            partials.lock().unwrap().push((range.start, sum));
        });
        let mut partials = partials.into_inner().unwrap();
        partials.sort_by_key(|(start, _)| *start);
        // Chunk boundaries are deterministic, so summing per-chunk in
        // chunk order reproduces the sequential chunked sum exactly.
        let par: f64 = partials.iter().map(|(_, s)| s).sum();
        let seq: f64 = data
            .chunks(data.len() / 8)
            .map(|c| c.iter().sum::<f64>())
            .sum();
        assert!((par - seq).abs() < 1e-9);
    }

    #[test]
    fn panics_propagate_after_all_tasks_finish() {
        let pool = ThreadPool::new(3);
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        if i == 5 {
                            panic!("task blew up");
                        }
                        fin.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the scope caller");
        assert_eq!(finished.load(Ordering::Relaxed), 15, "others still ran");
        // The pool survives a panicked scope.
        let after = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                after.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stress_many_small_tasks() {
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for i in 0..2000usize {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(1, Ordering::Relaxed);
                    std::hint::black_box(i);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global();
        let b = global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut x = 0;
        pool.scope(|s| s.spawn(|| x += 1));
        assert_eq!(x, 1);
    }
}
