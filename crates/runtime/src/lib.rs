//! A small, dependency-free work-stealing thread pool with scoped
//! fork-join, shared by every compute layer of the NURD workspace.
//!
//! The build container has no crates.io access, so this crate plays the
//! role rayon would: it is built on `std::thread` and std atomics. The
//! design is the classic work-stealing shape:
//!
//! * every worker **owns** a lock-free Chase–Lev [`Deque`] of pending
//!   tasks — the owner pushes and pops LIFO at the bottom (cache-warm,
//!   depth-first), thieves hold [`Stealer`] handles and CAS-steal FIFO
//!   from the top (breadth-first, grabs the biggest subtrees). The hot
//!   scheduling path takes no lock;
//! * a mutexed **injector** queue receives tasks spawned from threads
//!   outside the pool (many producers, so the single-owner Chase–Lev
//!   push end does not apply there);
//! * [`ThreadPool::scope`] provides *scoped* fork-join: closures spawned
//!   inside a scope may borrow from the caller's stack, and the scope
//!   does not return until every spawned task has finished (panics are
//!   captured and propagated to the caller). While waiting, the calling
//!   thread **helps execute** pool tasks, so a pool with `threads == 1`
//!   degenerates to plain sequential execution with no deadlock and no
//!   idle spinning;
//! * [`ThreadPool::par_for_chunks`] is the embarrassingly-parallel loop
//!   primitive built on `scope`: it splits an index range into contiguous
//!   chunks and runs them concurrently;
//! * [`Channel`] is a bounded MPSC ingress queue with **blocking**,
//!   **non-blocking**, and **evicting** sends (the three overload
//!   policies a service boundary needs), and [`Notifier`] is the
//!   epoch-counting park/unpark primitive for workers that watch many
//!   such channels — together they are the substrate of `nurd-serve`'s
//!   concurrent ingestion service.
//!
//! Determinism note for ML callers: parallelism here is across *disjoint
//! outputs* (each chunk or spawned closure writes its own region), so the
//! results of a parallel loop are bit-for-bit those of the sequential
//! loop — scheduling order affects only wall-clock time. The histogram
//! training paths in `nurd-ml` and the shard dispatcher in `nurd-serve`
//! both rely on exactly this property.
//!
//! # Example
//!
//! ```
//! use nurd_runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut partial = vec![0u64; 4];
//! pool.scope(|s| {
//!     for (i, slot) in partial.iter_mut().enumerate() {
//!         s.spawn(move || *slot = (i as u64 + 1) * 10);
//!     }
//! });
//! assert_eq!(partial.iter().sum::<u64>(), 100);
//!
//! // Chunked parallel-for over a shared slice.
//! let data: Vec<f64> = (0..1000).map(f64::from).collect();
//! let sums = std::sync::Mutex::new(0.0);
//! pool.par_for_chunks(data.len(), 4, |range| {
//!     let s: f64 = data[range].iter().sum();
//!     *sums.lock().unwrap() += s;
//! });
//! assert_eq!(*sums.lock().unwrap(), 499.5 * 1000.0);
//! ```

mod channel;
mod deque;
mod notify;
mod pool;

pub use channel::{Channel, SendError, TrySendError};
pub use deque::{Deque, Stealer};
pub use notify::Notifier;
pub use pool::Scope;
pub use pool::{global, ThreadPool};
