//! The lock-free Chase–Lev work-stealing deque underneath
//! [`crate::ThreadPool`].
//!
//! One [`Deque`] belongs to one worker: the **owner** pushes and pops
//! LIFO at the bottom end — recently spawned tasks are cache-warm, and
//! popping them first walks a fork-join tree depth-first, bounding the
//! number of live tasks. **Thieves** hold [`Stealer`] handles and take
//! FIFO from the top end: the oldest task in a fork-join tree is the
//! root of the largest unstarted subtree, so a single steal migrates
//! the most work.
//!
//! This is the classic Chase–Lev layout (Chase & Lev, SPAA '05, with
//! the memory orderings of Lê et al., PPoPP '13): a growable
//! power-of-two ring buffer indexed by two monotonically increasing
//! counters, `top` (steal end, only ever advanced by a successful
//! compare-and-swap) and `bottom` (owner end, written only by the
//! owner). The hot operations take no lock:
//!
//! * `push` — one release store of `bottom` after writing the slot;
//! * `pop` — one `bottom` store + one `SeqCst` fence + one `top` load,
//!   and a single CAS only when racing thieves for the *last* item;
//! * `steal` — two loads around a `SeqCst` fence and one CAS.
//!
//! The only mutex in the type guards the *retired-buffer list*, touched
//! exclusively on the (amortized-logarithmic) grow path and at drop.
//!
//! # Invariants (the `unsafe` contract)
//!
//! All `unsafe` in this module is licensed by the following facts,
//! property-tested under contention in `crates/runtime/tests/
//! deque_stress.rs`:
//!
//! 1. **Single owner.** `push`/`pop` are only ever executed by one
//!    thread at a time. This is enforced *by type*: [`Deque`] is
//!    `Send` but `!Sync` and not `Clone`, so a `&Deque` can only exist
//!    on one thread; cross-thread access goes through [`Stealer`],
//!    which exposes only the CAS end.
//! 2. **Initialized slots.** A slot at index `i` is written by the
//!    owner before `bottom` advances past `i` (release store), and read
//!    by a thief only when `top ≤ i < bottom` was observed after an
//!    acquire load — so every read slot holds a initialized value of
//!    `T`.
//! 3. **No aliased writes.** The owner writes slot `b & mask` only when
//!    `b − top < capacity` (it grows first otherwise), so a slot a
//!    thief may still legitimately claim is never overwritten; after a
//!    grow, owner writes go to the *new* buffer while a lagging thief
//!    reads the *old* one — whose claimed-range bits are intact, because
//!    growing copies and never clears.
//! 4. **Exactly-once hand-off.** The bitwise copy a thief takes before
//!    its CAS only *materializes* (is returned, and eventually dropped)
//!    when the CAS on `top` succeeds; a loser forgets the copy without
//!    dropping it. The owner's `pop` of the last remaining item runs the
//!    same CAS, so owner and thieves agree on a single winner.
//! 5. **Deferred reclamation.** A replaced (grown-out-of) buffer is
//!    never freed while the deque is live — thieves may still hold the
//!    old pointer — but parked on the retired list and freed in `Drop`,
//!    when no other handle can exist. Doubling growth bounds retired
//!    memory to less than one live buffer's worth.
//!
//! # `len` / `is_empty` are advisory
//!
//! [`Deque::len`], [`Stealer::len`] and both `is_empty`s are **racy
//! snapshots**: they load `top` and `bottom` without synchronizing with
//! concurrent operations, so the value may be stale before it returns
//! (and a transient `pop` underflow is clamped to zero). They exist for
//! monitoring, load heuristics, and tests only. Correctness decisions —
//! "is there work?" — must be made by *attempting* `pop`/`steal` and
//! handling `None`, which is exactly what [`crate::ThreadPool`]'s idle
//! scan does (see the audit note on `Shared::find_task` in `pool.rs`).

use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Initial ring capacity (slots); must be a power of two.
const INITIAL_CAPACITY: usize = 64;

/// A fixed-capacity power-of-two ring of possibly-uninitialized slots.
///
/// Slots are raw `UnsafeCell`s: the synchronization that makes reads and
/// writes race-free lives entirely in `Inner`'s `top`/`bottom` protocol
/// (see the module docs), never in the buffer itself.
struct RingBuffer<T> {
    /// `capacity − 1`; capacity is a power of two so `index & mask`
    /// is `index % capacity`.
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> RingBuffer<T> {
    fn new(capacity: usize) -> Box<Self> {
        assert!(capacity.is_power_of_two(), "ring capacity must be 2^k");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(RingBuffer {
            mask: capacity - 1,
            slots,
        })
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Writes `value` into slot `index % capacity`.
    ///
    /// # Safety
    ///
    /// Caller must be the owner, and the slot must not currently hold a
    /// value a thief could still claim (invariant 3).
    unsafe fn write(&self, index: isize, value: T) {
        // SAFETY: masked index is in bounds by construction; exclusive
        // write access per the caller's contract.
        unsafe {
            let slot = self.slots.get_unchecked(index as usize & self.mask).get();
            (*slot).write(value);
        }
    }

    /// Bitwise copy of the value in slot `index % capacity`. The caller
    /// decides — via the CAS protocol — whether the copy materializes
    /// or must be forgotten (invariant 4).
    ///
    /// # Safety
    ///
    /// `index` must have been observed inside `[top, bottom)` per the
    /// protocol in the module docs (invariant 2).
    unsafe fn read(&self, index: isize) -> T {
        // SAFETY: masked index is in bounds; the slot is initialized per
        // the caller's contract.
        unsafe {
            let slot = self.slots.get_unchecked(index as usize & self.mask).get();
            (*slot).assume_init_read()
        }
    }
}

/// The shared Chase–Lev state behind both handle types.
struct Inner<T> {
    /// Steal end: advanced only by successful CAS (thieves and the
    /// owner's last-item pop).
    top: AtomicIsize,
    /// Owner end: written only by the owner.
    bottom: AtomicIsize,
    /// Current ring (owned; replaced on grow, freed in `Drop`).
    buffer: AtomicPtr<RingBuffer<T>>,
    /// Buffers replaced by `grow`, kept alive until `Drop` because
    /// in-flight thieves may still read them (invariant 5). Locked only
    /// on the grow path and at drop — never on push/pop/steal.
    retired: Mutex<Vec<*mut RingBuffer<T>>>,
}

// SAFETY: `Inner` hands values of `T` across threads (a push on the
// owner thread is consumed by a steal elsewhere), which is exactly what
// `T: Send` licenses. The slot accesses racing on `&self` are governed
// by the top/bottom protocol (module docs); no `&T` is ever shared.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn new() -> Self {
        Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(RingBuffer::new(INITIAL_CAPACITY))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-end push.
    ///
    /// # Safety
    ///
    /// Caller must be the single owner (invariant 1).
    unsafe fn push(&self, item: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY (throughout): owner-only per the caller's contract.
        unsafe {
            if b - t >= (*buf).capacity() as isize {
                buf = self.grow(t, b, buf);
            }
            (*buf).write(b, item);
        }
        // Release: the slot write above happens-before any thief that
        // observes the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Doubles the ring, copying the live range `t..b`; returns the new
    /// buffer and parks the old one on the retired list.
    ///
    /// # Safety
    ///
    /// Owner-only, and `old` must be the current buffer.
    unsafe fn grow(&self, t: isize, b: isize, old: *mut RingBuffer<T>) -> *mut RingBuffer<T> {
        // SAFETY: owner-only; reads of `t..b` are initialized (invariant
        // 2), and writes target a buffer no other thread has seen yet.
        unsafe {
            let new = Box::into_raw(RingBuffer::new((*old).capacity() * 2));
            for i in t..b {
                // A *copy*, not a move: a thief that loaded `old` before
                // the swap below may still claim index `i` from it, and
                // the CAS on `top` guarantees each index materializes
                // exactly once regardless of which buffer served it.
                (*new).write(i, (*old).read(i));
            }
            // Release: the copied slots happen-before any thief that
            // acquires the new pointer.
            self.buffer.store(new, Ordering::Release);
            self.retired
                .lock()
                .expect("retired list poisoned")
                .push(old);
            new
        }
    }

    /// Owner-end pop (LIFO).
    ///
    /// # Safety
    ///
    /// Caller must be the single owner (invariant 1).
    unsafe fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        // Publish the claim on index `b` *before* reading `top`: the
        // SeqCst fence pairs with the one in `steal`, so a thief either
        // sees the decremented bottom (and leaves index `b` alone) or
        // its CAS on `top` is ordered against ours below.
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: restore the canonical empty state.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        if t < b {
            // More than one item: index `b` is unreachable by thieves
            // (they need top == b, but top ≤ t < b and only CAS moves
            // it forward one at a time past winners).
            // SAFETY: t < b ⇒ slot `b` initialized and exclusively ours.
            return Some(unsafe { (*buf).read(b) });
        }
        // Exactly one item left: race the thieves for it with the same
        // CAS they use (invariant 4).
        let won = self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            // SAFETY: the CAS made index `b` ours exclusively.
            Some(unsafe { (*buf).read(b) })
        } else {
            None
        }
    }

    /// Thief-end steal (FIFO); safe to call from any thread. Retries
    /// internally on a lost CAS race while items remain.
    fn steal(&self) -> Option<T> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            // Pairs with the fence in `pop`: see there.
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Acquire: slot writes (and grow copies) up to the observed
            // `bottom`/buffer happen-before the read below.
            let buf = self.buffer.load(Ordering::Acquire);
            // SAFETY: `t ∈ [top, bottom)` was observed above (invariant
            // 2); the copy is forgotten unless the CAS wins (invariant 4).
            let item = unsafe { (*buf).read(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(item);
            }
            // Lost the race — some other thief (or the owner's last-item
            // pop) owns this index. Drop the bitwise copy on the floor
            // *without* running its destructor and try the next index.
            std::mem::forget(item);
        }
    }

    /// Racy advisory length (see the module docs).
    fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        usize::try_from(b - t).unwrap_or(0)
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: both handle types share one `Arc`, so this
        // runs after the last owner *and* the last stealer is gone.
        let buf = *self.buffer.get_mut();
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        unsafe {
            // SAFETY: `[top, bottom)` of the *current* buffer holds the
            // not-yet-consumed items (retired buffers only hold bits
            // already copied forward or already claimed — never dropped
            // here, invariant 5).
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for old in self
                .retired
                .get_mut()
                .expect("retired list poisoned")
                .drain(..)
            {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner handle of a lock-free Chase–Lev work-stealing deque.
///
/// The owner works LIFO at the bottom end ([`Deque::push`] /
/// [`Deque::pop`]); any number of [`Stealer`] handles (from
/// [`Deque::stealer`]) take FIFO from the top end via a CAS. All three
/// hot operations are lock-free; the ring grows by doubling when full
/// (replaced buffers are reclaimed at drop — see the module docs for
/// the full invariant list).
///
/// `Deque` is `Send` but **`!Sync`** and not `Clone`: the Chase–Lev
/// owner end is single-threaded *by algorithm*, and the type system
/// enforces it — move the deque to the thread that works it, hand
/// `Stealer`s to everyone else.
///
/// [`Deque::len`]/[`Deque::is_empty`] are racy advisory snapshots; see
/// the module docs.
pub struct Deque<T> {
    inner: Arc<Inner<T>>,
    /// `!Sync` marker: owner operations must not be callable through
    /// shared references from two threads (invariant 1).
    _not_sync: PhantomData<Cell<()>>,
}

impl<T: Send> Default for Deque<T> {
    fn default() -> Self {
        Deque::new()
    }
}

impl<T: Send> Deque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        Deque {
            inner: Arc::new(Inner::new()),
            _not_sync: PhantomData,
        }
    }

    /// A cloneable, `Sync` handle onto this deque's steal end.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a task at the owner end (bottom). Lock-free; grows the
    /// ring (amortized O(1)) when full.
    pub fn push(&self, item: T) {
        // SAFETY: `Deque` is `!Sync` and not `Clone`, so this thread is
        // the only one that can reach the owner end (invariant 1).
        unsafe { self.inner.push(item) }
    }

    /// Pops the most recently pushed task (owner end, LIFO).
    pub fn pop(&self) -> Option<T> {
        // SAFETY: as in `push` — single owner by type.
        unsafe { self.inner.pop() }
    }

    /// Steals the oldest task (thief end, FIFO) — the owner acting as
    /// its own thief; equivalent to `self.stealer().steal()`.
    pub fn steal(&self) -> Option<T> {
        self.inner.steal()
    }

    /// Number of queued tasks — a **racy advisory snapshot**, stale the
    /// moment it returns (see the module docs). Never use it to decide
    /// whether `pop`/`steal` will succeed; attempt the operation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the deque looked empty at the snapshot instant — racy
    /// advisory, like [`Deque::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cloneable, thread-safe handle onto the steal (top) end of a
/// [`Deque`]. Any number of threads may steal concurrently; each item
/// is delivered to exactly one caller (owner pops included).
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Deque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deque")
            .field("len", &self.inner.len())
            .finish()
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer")
            .field("len", &self.inner.len())
            .finish()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Stealer<T> {
    /// Steals the oldest task (FIFO). Lock-free: one CAS per claimed
    /// item, retrying internally while the deque is non-empty.
    pub fn steal(&self) -> Option<T> {
        self.inner.steal()
    }

    /// Racy advisory length — same contract as [`Deque::len`].
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Racy advisory emptiness — same contract as [`Deque::is_empty`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = Deque::new();
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.pop(), Some(3), "owner takes newest");
        assert_eq!(d.steal(), Some(0), "thief takes oldest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Some(1));
        assert!(d.pop().is_none() && d.steal().is_none());
    }

    #[test]
    fn len_tracks_pushes() {
        let d = Deque::new();
        assert!(d.is_empty());
        d.push(1);
        d.push(2);
        assert_eq!(d.len(), 2);
        d.steal();
        assert_eq!(d.len(), 1);
        assert_eq!(d.stealer().len(), 1);
    }

    #[test]
    fn ring_grows_past_initial_capacity() {
        let d = Deque::new();
        let n = INITIAL_CAPACITY * 4 + 7;
        for i in 0..n {
            d.push(i);
        }
        assert_eq!(d.len(), n);
        // FIFO from the top end across two grows.
        for i in 0..n / 2 {
            assert_eq!(d.steal(), Some(i));
        }
        // LIFO from the bottom end for the rest.
        for i in (n / 2..n).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert!(d.is_empty());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        // Leak detection via a drop counter: push across a grow, consume
        // some, drop the rest with the deque.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let d = Deque::new();
        let n = INITIAL_CAPACITY * 2 + 3;
        for _ in 0..n {
            d.push(Counted);
        }
        drop(d.pop());
        drop(d.steal());
        drop(d);
        assert_eq!(DROPS.load(Ordering::Relaxed), n);
    }

    #[test]
    fn concurrent_stealing_drains_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = Deque::new();
        for i in 0..1000u64 {
            d.push(i);
        }
        let taken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stealer = d.stealer();
                let taken = &taken;
                s.spawn(move || {
                    while stealer.steal().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 1000);
    }
}
