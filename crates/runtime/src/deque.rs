//! The work-stealing deque underneath [`crate::ThreadPool`].

use std::collections::VecDeque;
use std::sync::Mutex;

/// A mutex-guarded work-stealing deque.
///
/// The owner works LIFO at the back ([`Deque::push`] / [`Deque::pop`]):
/// recently spawned tasks are cache-warm and popping them first walks a
/// fork-join tree depth-first, bounding the number of live tasks. Thieves
/// take FIFO from the front ([`Deque::steal`]): the oldest task in a
/// fork-join tree is the root of the largest unstarted subtree, so a
/// single steal migrates the most work.
///
/// Lock-free Chase–Lev deques buy throughput under very fine-grained
/// tasking; this workspace's tasks are chunky (a feature column to
/// quantize, a shard of jobs to replay), so an uncontended `Mutex` per
/// deque is both simple and fast enough — and keeps the crate free of
/// `unsafe` outside the one lifetime erasure in [`crate::ThreadPool::scope`].
#[derive(Debug, Default)]
pub struct Deque<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Deque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        Deque {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task at the owner end (back).
    pub fn push(&self, item: T) {
        self.items.lock().expect("deque poisoned").push_back(item);
    }

    /// Pops the most recently pushed task (owner end, LIFO).
    pub fn pop(&self) -> Option<T> {
        self.items.lock().expect("deque poisoned").pop_back()
    }

    /// Steals the oldest task (thief end, FIFO).
    pub fn steal(&self) -> Option<T> {
        self.items.lock().expect("deque poisoned").pop_front()
    }

    /// Number of queued tasks (racy snapshot — informational only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.lock().expect("deque poisoned").len()
    }

    /// Whether the deque is currently empty (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = Deque::new();
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.pop(), Some(3), "owner takes newest");
        assert_eq!(d.steal(), Some(0), "thief takes oldest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Some(1));
        assert!(d.pop().is_none() && d.steal().is_none());
    }

    #[test]
    fn len_tracks_pushes() {
        let d = Deque::new();
        assert!(d.is_empty());
        d.push(1);
        d.push(2);
        assert_eq!(d.len(), 2);
        d.steal();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn concurrent_stealing_drains_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let d = Arc::new(Deque::new());
        for i in 0..1000u64 {
            d.push(i);
        }
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                while d.steal().is_some() {
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), 1000);
    }
}
