//! A bounded multi-producer single-consumer-ish channel for ingress
//! queues, built on `std` [`Mutex`]/[`Condvar`] like everything else in
//! this crate.
//!
//! Unlike [`std::sync::mpsc`], the receive side here is *batched and
//! non-blocking* ([`Channel::recv_batch`]): the intended consumer is a
//! drain worker that watches many channels at once and parks on a shared
//! [`crate::Notifier`] rather than on any single channel. The send side
//! is where the interesting policy lives:
//!
//! * [`Channel::send`] — **blocking** send: waits while the channel is at
//!   capacity (true back-pressure; the producer thread sleeps until a
//!   consumer makes room) and fails only once the channel is
//!   [closed](Channel::close);
//! * [`Channel::try_send`] — **non-blocking** send: returns
//!   [`TrySendError::Full`] instead of waiting, handing the item back to
//!   the caller so a different overload policy can be applied;
//! * [`Channel::send_evicting`] — never blocks: a full channel evicts its
//!   *oldest* item to make room and returns it (the shed-oldest overload
//!   policy as one atomic operation).
//!
//! Closing wakes every blocked sender with its item returned intact, so
//! no event is silently dropped at shutdown — the caller decides what a
//! failed send means. Receivers may keep draining after close;
//! [`Channel::is_drained`] (`closed && empty`) is the quiescence test a
//! shutdown sequence needs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The channel was closed; the unsent item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Why a [`Channel::try_send`] did not enqueue; the item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity — retry, block ([`Channel::send`]),
    /// evict ([`Channel::send_evicting`]), or drop, per policy.
    Full(T),
    /// The channel is closed; no send can ever succeed again.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// The item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(item) | TrySendError::Closed(item) => item,
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded (or unbounded) MPSC queue with blocking, non-blocking, and
/// evicting sends — see the module docs for the design.
pub struct Channel<T> {
    state: Mutex<State<T>>,
    /// Senders blocked in [`Channel::send`] wait here; every pop and
    /// [`Channel::close`] notifies.
    not_full: Condvar,
    /// Mirror of `state.queue.len()`, maintained under the mutex but
    /// readable without it — [`Channel::len`]/[`Channel::is_empty`] are
    /// lock-free, so consumers scanning many channels and stats
    /// snapshots never contend with the send/receive hot path.
    queued: AtomicUsize,
    capacity: Option<usize>,
}

impl<T> std::fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> Channel<T> {
    /// A channel holding at most `capacity` items (clamped to ≥ 1 — a
    /// zero-capacity rendezvous channel would deadlock the non-blocking
    /// receive side this crate pairs it with).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Channel {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            queued: AtomicUsize::new(0),
            capacity: Some(capacity.max(1)),
        }
    }

    /// A channel with no capacity bound: sends never block and never
    /// report [`TrySendError::Full`].
    #[must_use]
    pub fn unbounded() -> Self {
        Channel {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            queued: AtomicUsize::new(0),
            capacity: None,
        }
    }

    /// `Some(n)` for a bounded channel, `None` for unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("channel poisoned")
    }

    /// Blocking send: waits while the channel is full, enqueues as soon
    /// as a receiver makes room, and fails only if the channel is (or
    /// becomes, while waiting) closed — the item rides back in the error.
    ///
    /// `Ok(true)` reports an **empty→non-empty transition**: the channel
    /// held nothing immediately before this item. That is the one send a
    /// parked consumer needs to hear about (a non-empty channel is
    /// already somebody's pending work), so callers can skip their
    /// wake-up path on `Ok(false)` and keep the steady-state send cheap.
    pub fn send(&self, item: T) -> Result<bool, SendError<T>> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(SendError(item));
            }
            match self.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.not_full.wait(state).expect("channel condvar poisoned");
                }
                _ => {
                    let was_empty = state.queue.is_empty();
                    state.queue.push_back(item);
                    self.queued.store(state.queue.len(), Ordering::Relaxed);
                    return Ok(was_empty);
                }
            }
        }
    }

    /// Non-blocking send: enqueues if there is room, otherwise hands the
    /// item back as [`TrySendError::Full`] (or `Closed`). `Ok(true)`
    /// reports an empty→non-empty transition (see [`Channel::send`]).
    pub fn try_send(&self, item: T) -> Result<bool, TrySendError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TrySendError::Closed(item));
        }
        if let Some(cap) = self.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(item));
            }
        }
        let was_empty = state.queue.is_empty();
        state.queue.push_back(item);
        self.queued.store(state.queue.len(), Ordering::Relaxed);
        Ok(was_empty)
    }

    /// Never-blocking send that sheds from the *front*: if the channel is
    /// full, the oldest queued item is evicted to make room and returned
    /// in the `Ok` pair's second slot. The first slot reports the
    /// empty→non-empty transition (see [`Channel::send`]); an eviction
    /// implies the channel was full, so the two are never both set.
    pub fn send_evicting(&self, item: T) -> Result<(bool, Option<T>), SendError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(SendError(item));
        }
        let was_empty = state.queue.is_empty();
        let evicted = match self.capacity {
            Some(cap) if state.queue.len() >= cap => state.queue.pop_front(),
            _ => None,
        };
        state.queue.push_back(item);
        self.queued.store(state.queue.len(), Ordering::Relaxed);
        Ok((was_empty, evicted))
    }

    /// Pops one item, never blocking (receivers of this channel park on a
    /// [`crate::Notifier`], not here).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.lock();
        let item = state.queue.pop_front();
        self.queued.store(state.queue.len(), Ordering::Relaxed);
        if item.is_some() {
            drop(state);
            self.not_full.notify_all();
        }
        item
    }

    /// Moves up to `max` items (in FIFO order) into `out`, returning how
    /// many were taken, and wakes senders blocked on a full channel. One
    /// lock acquisition per batch — this is the receive primitive drain
    /// loops use.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.lock();
        let take = state.queue.len().min(max);
        out.extend(state.queue.drain(..take));
        self.queued.store(state.queue.len(), Ordering::Relaxed);
        drop(state);
        if take > 0 {
            self.not_full.notify_all();
        }
        take
    }

    /// Number of queued items — a **lock-free** racy snapshot
    /// (informational only): reads the atomic mirror, never the mutex,
    /// so polling it cannot contend with senders or receivers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Whether the channel is currently empty (lock-free racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel: every current and future send fails, and every
    /// sender blocked in [`Channel::send`] wakes immediately with its item
    /// returned. Already-queued items stay receivable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_full.notify_all();
    }

    /// Whether [`Channel::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Quiescence test for shutdown: closed *and* empty, i.e. no send can
    /// add work and no queued work remains (taken under the lock — this
    /// one is exact, not a racy mirror read).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        let state = self.lock();
        state.closed && state.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_batched_receive() {
        let ch = Channel::unbounded();
        for i in 0..10 {
            ch.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ch.recv_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(ch.try_recv(), Some(4));
        assert_eq!(ch.recv_batch(&mut out, 100), 5);
        assert_eq!(out.len(), 9);
        assert!(ch.is_empty());
    }

    #[test]
    fn try_send_reports_full_and_hands_the_item_back() {
        let ch = Channel::bounded(2);
        ch.try_send(1).unwrap();
        ch.try_send(2).unwrap();
        assert_eq!(ch.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(ch.len(), 2);
        ch.try_recv();
        ch.try_send(3).unwrap();
    }

    #[test]
    fn send_evicting_sheds_the_oldest() {
        let ch = Channel::bounded(2);
        assert_eq!(ch.send_evicting(1).unwrap(), (true, None));
        assert_eq!(ch.send_evicting(2).unwrap(), (false, None));
        assert_eq!(
            ch.send_evicting(3).unwrap(),
            (false, Some(1)),
            "oldest evicted"
        );
        let mut out = Vec::new();
        ch.recv_batch(&mut out, 10);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn sends_report_the_empty_to_nonempty_transition() {
        let ch = Channel::bounded(4);
        assert!(ch.send(1).unwrap(), "first send transitions");
        assert!(!ch.send(2).unwrap(), "second send does not");
        assert!(!ch.try_send(3).unwrap());
        let mut out = Vec::new();
        ch.recv_batch(&mut out, 10);
        assert!(ch.try_send(4).unwrap(), "drained channel transitions again");
    }

    #[test]
    fn close_fails_sends_but_queued_items_stay_receivable() {
        let ch = Channel::bounded(4);
        ch.send(1).unwrap();
        ch.close();
        assert_eq!(ch.send(2), Err(SendError(2)));
        assert_eq!(ch.try_send(3), Err(TrySendError::Closed(3)));
        assert_eq!(ch.send_evicting(4), Err(SendError(4)));
        assert!(!ch.is_drained(), "item still queued");
        assert_eq!(ch.try_recv(), Some(1));
        assert!(ch.is_drained());
    }

    #[test]
    fn blocking_send_waits_for_room_and_loses_nothing() {
        let ch = Arc::new(Channel::bounded(4));
        let sent = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let ch = Arc::clone(&ch);
                let sent = Arc::clone(&sent);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        ch.send(p * 1000 + i).unwrap();
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Consumer drains slowly; blocked producers must wake on each pop.
        let mut got = Vec::new();
        while got.len() < 600 {
            let mut batch = Vec::new();
            if ch.recv_batch(&mut batch, 7) == 0 {
                std::thread::yield_now();
            }
            got.extend(batch);
        }
        for producer in producers {
            producer.join().unwrap();
        }
        assert_eq!(sent.load(Ordering::Relaxed), 600);
        assert_eq!(got.len(), 600);
        // Per-producer FIFO order survives the interleaving.
        for p in 0..3u64 {
            let mine: Vec<u64> = got.iter().filter(|v| **v / 1000 == p).copied().collect();
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "producer {p} reordered"
            );
        }
    }

    #[test]
    fn close_wakes_blocked_senders_with_their_item() {
        let ch = Arc::new(Channel::bounded(1));
        ch.send(0).unwrap();
        let blocked = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || ch.send(99))
        };
        // Give the sender time to block, then close instead of popping.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ch.close();
        assert_eq!(blocked.join().unwrap(), Err(SendError(99)));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ch = Channel::bounded(0);
        assert_eq!(ch.capacity(), Some(1));
        ch.send(1).unwrap();
        assert_eq!(ch.try_send(2), Err(TrySendError::Full(2)));
    }
}
