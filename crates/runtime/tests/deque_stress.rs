//! Contention property tests for the lock-free Chase–Lev [`Deque`].
//!
//! The `unsafe` in `nurd_runtime::deque` is licensed by five invariants
//! (see its module docs); this suite attacks the observable ones from
//! the outside with one owner and N concurrent stealers over randomized
//! schedules:
//!
//! * **exactly-once delivery** — every pushed item is received by
//!   precisely one consumer (the owner's pops or one stealer), none
//!   duplicated, none lost — across ring growth, the owner/thief
//!   last-item CAS race, and lost steal races;
//! * **no panics / no leaks** — drop counters confirm every item's
//!   destructor runs exactly once even when items die with the deque;
//! * **`len()` bounds** — the advisory snapshot never exceeds the
//!   owner's outstanding count (pushes minus its own pops; steals only
//!   shrink it further) and reads 0 once everything is consumed.
//!
//! These tests are scheduling-sensitive by design: they use real
//! threads and `yield_now` to churn interleavings. They are
//! deterministic in *outcome* (the asserted properties hold under every
//! schedule), not in execution path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

use nurd_runtime::{Deque, Stealer};
use proptest::prelude::*;

/// Drains `stealer` until the owner signals `done` *and* a subsequent
/// steal comes back empty; returns everything taken.
///
/// A `None` before `done` may just mean the owner is slow, so keep
/// spinning. After `done` no more pushes can happen and `bottom` only
/// grows, so a `None` means every remaining item was claimed by some
/// consumer — safe to stop.
fn drain_until_done(stealer: &Stealer<u64>, done: &AtomicBool) -> Vec<u64> {
    let mut taken = Vec::new();
    loop {
        match stealer.steal() {
            Some(v) => taken.push(v),
            None if done.load(Ordering::Acquire) => match stealer.steal() {
                Some(v) => taken.push(v),
                None => return taken,
            },
            None => thread::yield_now(),
        }
    }
}

/// Runs one randomized owner schedule against `n_stealers` concurrent
/// thieves and asserts exactly-once delivery plus the `len()` bounds.
///
/// `ops` drives the owner: value 0 pops, anything else pushes the next
/// sequential item. After the schedule, the owner drains what's left
/// via `pop` so stealers can terminate.
fn run_schedule(n_stealers: usize, ops: &[u8]) {
    let deque = Deque::new();
    let done = AtomicBool::new(false);
    let mut owner_got = Vec::new();
    let mut pushed: u64 = 0;

    let stolen: Vec<Vec<u64>> = thread::scope(|s| {
        let handles: Vec<_> = (0..n_stealers)
            .map(|_| {
                let stealer = deque.stealer();
                let done = &done;
                s.spawn(move || drain_until_done(&stealer, done))
            })
            .collect();

        for &op in ops {
            if op == 0 {
                if let Some(v) = deque.pop() {
                    owner_got.push(v);
                }
            } else {
                deque.push(pushed);
                pushed += 1;
            }
            // Advisory bound: the snapshot can lag (a stolen item may
            // still be counted) but can never exceed what the owner
            // knows is outstanding.
            assert!(
                deque.len() <= (pushed as usize).saturating_sub(owner_got.len()),
                "len() exceeded outstanding items"
            );
            if pushed.is_multiple_of(7) {
                thread::yield_now();
            }
        }
        // Drain the remainder ourselves so every item has a consumer,
        // exercising the owner-vs-thief last-item CAS on the way down.
        while let Some(v) = deque.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("stealer panicked"))
            .collect()
    });

    let mut all: Vec<u64> = owner_got;
    for mut s in stolen {
        all.append(&mut s);
    }
    all.sort_unstable();
    let expect: Vec<u64> = (0..pushed).collect();
    assert_eq!(all, expect, "each pushed item delivered exactly once");
    assert_eq!(deque.len(), 0);
    assert!(deque.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One owner, 1–4 stealers, a randomized push/pop schedule long
    /// enough to force ring growth (initial capacity is 64): every item
    /// lands exactly once, nobody panics, `len()` stays bounded.
    #[test]
    fn randomized_schedules_deliver_exactly_once(
        n_stealers in 1usize..5,
        ops in proptest::collection::vec(0u8..5, 64..512),
    ) {
        run_schedule(n_stealers, &ops);
    }
}

/// Heavy fixed-shape contention: a long all-push prologue (three ring
/// doublings), then a pop-heavy epilogue, against four stealers.
#[test]
fn sustained_contention_with_growth() {
    let mut ops = vec![1u8; 600];
    ops.extend(std::iter::repeat_n([1u8, 0, 0], 200).flatten());
    run_schedule(4, &ops);
}

/// Every item's destructor runs exactly once — consumed or not — even
/// when the deque dies holding items spread across a grown ring, with
/// stealers having taken some from the *old* (retired) buffer.
#[test]
fn destructors_run_exactly_once_under_contention() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    const N: usize = 500;
    DROPS.store(0, Ordering::Relaxed);
    let deque = Deque::new();
    let consumed = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..3 {
            let stealer = deque.stealer();
            let consumed = &consumed;
            s.spawn(move || {
                // Take roughly a third each; stop early so some items
                // remain queued when the deque drops.
                for _ in 0..N / 3 {
                    if let Some(item) = stealer.steal() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        drop(item);
                    } else {
                        thread::yield_now();
                    }
                }
            });
        }
        for i in 0..N {
            deque.push(Counted(i as u64));
        }
    });
    let taken = consumed.load(Ordering::Relaxed);
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        taken,
        "consumed items dropped once"
    );
    drop(deque);
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        N,
        "queued items dropped with the deque"
    );
}
