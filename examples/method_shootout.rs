//! Head-to-head comparison of a few methods from the paper's Table 3 on a
//! small suite — a miniature of the full `table3_accuracy` experiment.
//!
//! ```sh
//! cargo run --release --example method_shootout
//! ```

use nurd::sim::{replay_job, MethodSummary, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn main() {
    let config = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(8)
        .with_task_range(120, 200)
        .with_seed(0xD0E);
    let jobs = nurd::trace::generate_suite(&config);

    let picks = [
        "GBTR", "KNN", "PU-EN", "Grabit", "Wrangler", "NURD-NC", "NURD",
    ];
    println!("Mini Table 3 ({} Google-style jobs)\n", jobs.len());
    println!(
        "{:10} {:>6} {:>6} {:>6} {:>6}",
        "method", "TPR", "FPR", "FNR", "F1"
    );

    for spec in nurd::baselines::registry() {
        if !picks.contains(&spec.name) {
            continue;
        }
        let confusions: Vec<_> = jobs
            .iter()
            .map(|job| {
                let mut predictor = spec.build();
                replay_job(job, predictor.as_mut(), &ReplayConfig::default()).confusion
            })
            .collect();
        let s = MethodSummary::from_confusions(&confusions);
        println!(
            "{:10} {:6.2} {:6.2} {:6.2} {:6.3}",
            spec.name, s.tpr, s.fpr, s.fnr, s.f1
        );
    }
    println!(
        "\n(run `cargo run --release -p nurd-bench --bin table3_accuracy` for all 24 methods)"
    );
}
