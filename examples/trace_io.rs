//! Exporting and re-importing traces: generate a suite, write it to the
//! CSV interchange format, read it back, and verify the replay agrees.
//!
//! ```sh
//! cargo run --release --example trace_io
//! ```

use nurd::core::{NurdConfig, NurdPredictor};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SuiteConfig::new(TraceStyle::Alibaba)
        .with_jobs(3)
        .with_task_range(80, 120)
        .with_seed(11);
    let jobs = nurd::trace::generate_suite(&config);

    let path = std::env::temp_dir().join("nurd_example_suite.csv");
    nurd::data::write_jobs_csv(&path, &jobs)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} jobs to {} ({bytes} bytes)",
        jobs.len(),
        path.display()
    );

    let reloaded = nurd::data::read_jobs_csv(&path)?;
    assert_eq!(reloaded.len(), jobs.len());
    println!(
        "reloaded {} jobs; verifying replay equivalence...",
        reloaded.len()
    );

    for (a, b) in jobs.iter().zip(&reloaded) {
        let out_a = replay_job(
            a,
            &mut NurdPredictor::new(NurdConfig::default()),
            &ReplayConfig::default(),
        );
        let out_b = replay_job(
            b,
            &mut NurdPredictor::new(NurdConfig::default()),
            &ReplayConfig::default(),
        );
        assert_eq!(
            out_a.confusion,
            out_b.confusion,
            "job {} diverged",
            a.job_id()
        );
        println!(
            "  job {}: f1 {:.3} == {:.3}  ✓",
            a.job_id(),
            out_a.confusion.f1(),
            out_b.confusion.f1()
        );
    }
    std::fs::remove_file(&path).ok();
    println!("round-trip exact: the CSV layer is replay-faithful");
    Ok(())
}
