//! Quickstart: generate a job, run NURD on it, inspect the outcome.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nurd::core::{NurdConfig, NurdPredictor};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn main() {
    // 1. Generate a synthetic Google-style job: 200 tasks, 15 features,
    //    ~10% stragglers at the p90 latency threshold.
    let config = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(200, 200)
        .with_seed(42);
    let job = nurd::trace::generate_job(&config, 0);
    let threshold = job.straggler_threshold(0.9);
    println!(
        "job {}: {} tasks, p90 threshold {:.0}s, max latency {:.0}s",
        job.job_id(),
        job.task_count(),
        threshold,
        job.max_latency()
    );

    // 2. Replay it online against NURD (paper defaults).
    let mut nurd = NurdPredictor::new(NurdConfig::default());
    let outcome = replay_job(&job, &mut nurd, &ReplayConfig::default());

    // 3. Score the prediction.
    let c = &outcome.confusion;
    println!(
        "NURD: caught {}/{} stragglers, {} false alarms over {} tasks",
        c.true_positives,
        c.true_positives + c.false_negatives,
        c.false_positives,
        c.total()
    );
    println!(
        "TPR {:.2}  FPR {:.2}  F1 {:.3}  (delta = {:?})",
        c.tpr(),
        c.fpr(),
        c.f1(),
        nurd.delta()
    );

    // 4. Show when each straggler was flagged.
    println!("\nflagged tasks (id @ checkpoint):");
    for (id, flag) in outcome.flagged_at.iter().enumerate() {
        if let Some(k) = flag {
            let truth = if job.tasks()[id].latency() >= threshold {
                "straggler"
            } else {
                "FALSE ALARM"
            };
            println!("  task {id:4} @ checkpoint {k:2} ({truth})");
        }
    }
}
