//! Fleet-scale streaming: jobs arriving and departing mid-stream through
//! the sharded `nurd-serve` engine under bounded-queue back-pressure,
//! with per-job scorecards printed as each job finalizes and a
//! cross-check against sequential replay.
//!
//! CI runs this example as an end-to-end gate on the streaming path: it
//! exits nonzero on any panic or on nonzero malformed-event counts
//! (orphans, rejections, overload losses).
//!
//! ```sh
//! cargo run --release --example fleet_monitor
//! ```

use nurd::core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd::data::JobSpec;
use nurd::runtime::ThreadPool;
use nurd::serve::{Engine, EngineConfig, OverloadPolicy};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

const SHARDS: usize = 4;
const QUANTILE: f64 = 0.9;
/// Small on purpose: saturates under the burst so the Block policy's
/// lossless back-pressure is actually exercised (and counted).
const QUEUE_CAPACITY: usize = 512;
/// Ingest granularity — the service pattern of push / drain / collect.
const BATCH: usize = 1024;

fn nurd_warm() -> NurdPredictor {
    NurdPredictor::new(
        NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default())),
    )
}

fn main() {
    // A small fleet of jobs arriving at staggered times on one stream.
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(80, 140)
        .with_checkpoints(12)
        .with_seed(0xF1EE7);
    let jobs = nurd::trace::generate_suite(&cfg);
    let specs: Vec<JobSpec> = jobs
        .iter()
        .map(|j| JobSpec::of_trace(j, QUANTILE))
        .collect();
    let events = nurd::trace::staggered_fleet_events(&jobs, QUANTILE, 400.0, 0xF1EE7);

    let pool = ThreadPool::new(SHARDS);
    let mut engine = Engine::new(
        EngineConfig {
            shards: SHARDS,
            warmup_fraction: 0.04,
            queue_capacity: Some(QUEUE_CAPACITY),
            overload: OverloadPolicy::Block,
        },
        Box::new(|_spec: &JobSpec| Box::new(nurd_warm())),
    );

    let n_events = events.len();
    println!(
        "streaming {} jobs · {} events · {SHARDS} shards on a {}-thread pool · \
         queue capacity {QUEUE_CAPACITY} (Block)\n",
        jobs.len(),
        n_events,
        pool.threads()
    );
    println!(
        "{:>5} {:>6} {:>9} {:>13} {:>9} {:>7} {:>7} {:>7}",
        "job", "tasks", "τ_stra(s)", "finalized", "flagged", "TPR", "FPR", "F1"
    );

    // The service loop: ingest a batch, drain, report whatever finalized.
    let start = std::time::Instant::now();
    let mut reports = Vec::new();
    let mut batches = events.into_iter().peekable();
    while batches.peek().is_some() {
        let chunk: Vec<_> = batches.by_ref().take(BATCH).collect();
        engine.push_all(chunk);
        engine.drain(&pool);
        for r in engine.take_finalized() {
            let spec = specs.iter().find(|s| s.job == r.job).expect("spec");
            let c = &r.outcome.confusion;
            println!(
                "{:>5} {:>6} {:>9.0} {:>13} {:>9} {:>7.2} {:>7.2} {:>7.2}",
                r.job,
                spec.task_count,
                spec.threshold,
                format!("{:?}", r.finalized),
                r.outcome.flagged_at.iter().flatten().count(),
                c.tpr(),
                c.fpr(),
                c.f1()
            );
            reports.push(r);
        }
    }
    let stats = engine.stats();
    let live: usize = stats.jobs_per_shard.iter().sum();
    let final_report = engine.finish(&pool);
    reports.extend(final_report.jobs.iter().cloned());
    let elapsed = start.elapsed();

    let macro_f1 = reports
        .iter()
        .map(|r| r.outcome.confusion.f1())
        .sum::<f64>()
        / reports.len() as f64;
    println!(
        "\nmacro-F1 {:.3} · {:.0} events/s · shard loads (events) {:?} · {} live at finish",
        macro_f1,
        n_events as f64 / elapsed.as_secs_f64(),
        stats.events_per_shard,
        live,
    );
    println!(
        "lifecycle: {} finalized mid-stream · stale tail {} · orphans {} · rejected {}",
        stats.finalized_jobs, stats.stale_events, stats.orphan_events, stats.rejected_events,
    );
    println!(
        "back-pressure: {} blocked pushes · {} shed · {} rejected ingress",
        stats.blocked_pushes,
        final_report.overload.shed_events,
        final_report.overload.rejected_ingress,
    );

    // ---- CI gates: a clean canonical stream must stay clean. ----
    assert_eq!(reports.len(), jobs.len(), "every job must finalize");
    assert_eq!(stats.orphan_events, 0, "canonical stream produced orphans");
    assert_eq!(stats.rejected_events, 0, "canonical stream was rejected");
    assert_eq!(
        final_report.overload.lost_events(),
        0,
        "Block policy must not lose events"
    );

    // The engine's contract: per-job results are bit-for-bit those of a
    // sequential replay, even though jobs were admitted and finalized
    // mid-stream under back-pressure. Check every job.
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: 0.04,
    };
    for job in &jobs {
        let reference = replay_job(job, &mut nurd_warm(), &replay_cfg);
        let served = &reports
            .iter()
            .find(|r| r.job == job.job_id())
            .expect("job reported")
            .outcome;
        assert_eq!(
            served,
            &reference,
            "engine must equal sequential replay bit-for-bit (job {})",
            job.job_id()
        );
    }
    println!(
        "determinism cross-check vs sequential replay: OK ({} jobs)",
        jobs.len()
    );
}
