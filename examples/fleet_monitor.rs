//! Fleet-scale streaming **as a concurrent service**: N producer threads
//! push jobs through cloned `EngineHandle`s into the background drain
//! loop, under bounded-queue back-pressure with adaptive shard
//! balancing, while a monitor loop polls lock-free stats and harvests
//! per-job scorecards as jobs finalize — then every outcome is
//! cross-checked against sequential replay.
//!
//! CI runs this example as the end-to-end gate on the service-mode
//! path: it exits nonzero on any panic, on nonzero malformed-event
//! counts (orphans, rejections, overload losses), or on any event lost
//! under the `Block` policy.
//!
//! ```sh
//! cargo run --release --example fleet_monitor
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nurd::core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd::data::{JobSpec, TaskEvent};
use nurd::serve::{BalanceConfig, EngineConfig, EngineService, OverloadPolicy, ServiceConfig};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

const SHARDS: usize = 4;
const PRODUCERS: usize = 3;
const QUANTILE: f64 = 0.9;
/// Small on purpose: saturates under the burst so the Block policy's
/// *blocking sends* are actually exercised (and counted) — producers
/// sleep inside `push` until the drain workers make room.
const QUEUE_CAPACITY: usize = 512;

fn nurd_warm() -> NurdPredictor {
    NurdPredictor::new(
        NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default())),
    )
}

fn main() {
    // A small fleet of jobs, split round-robin across producer threads;
    // each producer interleaves its own jobs' streams (per-job order is
    // the stream contract, cross-job order is free).
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(80, 140)
        .with_checkpoints(12)
        .with_seed(0xF1EE7);
    let jobs = nurd::trace::generate_suite(&cfg);
    let specs: Vec<JobSpec> = jobs
        .iter()
        .map(|j| JobSpec::of_trace(j, QUANTILE))
        .collect();
    let streams: Vec<Vec<TaskEvent>> =
        nurd::trace::producer_streams(&jobs, PRODUCERS, QUANTILE, 0xF1EE7);
    let n_events: usize = streams.iter().map(Vec::len).sum();

    let service = EngineService::start(
        EngineConfig {
            shards: SHARDS,
            warmup_fraction: 0.04,
            queue_capacity: Some(QUEUE_CAPACITY),
            overload: OverloadPolicy::Block,
            // One oversized job pinning a shard gets its refits fanned
            // out once that shard's backlog crosses the threshold (the
            // engine clamps the threshold to half the queue capacity).
            balance: Some(BalanceConfig {
                min_tasks: 64,
                ..BalanceConfig::default()
            }),
        },
        ServiceConfig::default(),
        Box::new(|_spec: &JobSpec| Box::new(nurd_warm())),
    );

    println!(
        "streaming {} jobs · {} events · {PRODUCERS} producer threads → {SHARDS} shards \
         → background drain service · queue capacity {QUEUE_CAPACITY} (Block, blocking sends)\n",
        jobs.len(),
        n_events,
    );
    println!(
        "{:>5} {:>6} {:>9} {:>13} {:>9} {:>7} {:>7} {:>7}",
        "job", "tasks", "τ_stra(s)", "finalized", "flagged", "TPR", "FPR", "F1"
    );

    // Producers: push-only threads; the drain service does the rest.
    let start = std::time::Instant::now();
    let accepted = Arc::new(AtomicUsize::new(0));
    let producers: Vec<_> = streams
        .into_iter()
        .map(|stream| {
            let handle = service.handle();
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                accepted.fetch_add(handle.push_all(stream), Ordering::Relaxed);
            })
        })
        .collect();

    // The monitor loop: poll the atomics (no locks, no drain pauses),
    // print scorecards as jobs finalize, until the producers are done.
    let mut reports = Vec::new();
    let mut peak_backlog = 0usize;
    let harvest = |reports: &mut Vec<nurd::serve::JobReport>| {
        for r in service.take_finalized() {
            let spec = specs.iter().find(|s| s.job == r.job).expect("spec");
            let c = &r.outcome.confusion;
            println!(
                "{:>5} {:>6} {:>9.0} {:>13} {:>9} {:>7.2} {:>7.2} {:>7.2}",
                r.job,
                spec.task_count,
                spec.threshold,
                format!("{:?}", r.finalized),
                r.outcome.flagged_at.iter().flatten().count(),
                c.tpr(),
                c.fpr(),
                c.f1()
            );
            reports.push(r);
        }
    };
    while producers.iter().any(|p| !p.is_finished()) {
        peak_backlog = peak_backlog.max(service.stats().backlog_per_shard.iter().sum::<usize>());
        harvest(&mut reports);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    for producer in producers {
        producer.join().expect("producer panicked");
    }
    // Everything is pushed; settle the backlog, harvest the remainder,
    // then shut down.
    service.quiesce();
    harvest(&mut reports);
    let stats = service.stats();
    let live: usize = stats.jobs_per_shard.iter().sum();
    let final_report = service.close();
    reports.extend(final_report.jobs.iter().cloned());
    let elapsed = start.elapsed();

    let macro_f1 = reports
        .iter()
        .map(|r| r.outcome.confusion.f1())
        .sum::<f64>()
        / reports.len() as f64;
    println!(
        "\nmacro-F1 {:.3} · {:.0} events/s · shard loads (events) {:?} · peak backlog {} · {} live at close",
        macro_f1,
        n_events as f64 / elapsed.as_secs_f64(),
        stats.events_per_shard,
        peak_backlog,
        live,
    );
    println!(
        "lifecycle: {} finalized mid-stream · stale tail {} · orphans {} · rejected {}",
        stats.finalized_jobs, stats.stale_events, stats.orphan_events, stats.rejected_events,
    );
    println!(
        "back-pressure: {} blocked (sleeping) pushes · {} balance boosts · {} shed · {} rejected ingress",
        stats.blocked_pushes,
        stats.balance_boosts,
        final_report.overload.shed_events,
        final_report.overload.rejected_ingress,
    );

    // ---- CI gates: a clean canonical stream must stay clean. ----
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        n_events,
        "Block policy rejected a push"
    );
    assert_eq!(
        final_report.events, n_events,
        "events lost between producers and drains"
    );
    assert_eq!(reports.len(), jobs.len(), "every job must finalize");
    assert_eq!(stats.orphan_events, 0, "canonical stream produced orphans");
    assert_eq!(stats.rejected_events, 0, "canonical stream was rejected");
    assert_eq!(
        final_report.overload.lost_events(),
        0,
        "Block policy must not lose events"
    );

    // The engine's contract: per-job results are bit-for-bit those of a
    // sequential replay, even though events were pushed by racing
    // producer threads and drained by background workers under
    // back-pressure and adaptive balancing. Check every job.
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: 0.04,
    };
    for job in &jobs {
        let reference = replay_job(job, &mut nurd_warm(), &replay_cfg);
        let served = &reports
            .iter()
            .find(|r| r.job == job.job_id())
            .expect("job reported")
            .outcome;
        assert_eq!(
            served,
            &reference,
            "engine must equal sequential replay bit-for-bit (job {})",
            job.job_id()
        );
    }
    println!(
        "determinism cross-check vs sequential replay: OK ({} jobs)",
        jobs.len()
    );
}
