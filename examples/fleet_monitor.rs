//! Fleet-scale serving: an interleaved multi-job event stream replayed
//! through the sharded `nurd-serve` engine, with a per-job scorecard and
//! a cross-check against sequential replay.
//!
//! ```sh
//! cargo run --release --example fleet_monitor
//! ```

use nurd::core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd::data::JobSpec;
use nurd::runtime::ThreadPool;
use nurd::serve::{Engine, EngineConfig};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

const SHARDS: usize = 4;
const QUANTILE: f64 = 0.9;

fn nurd_warm() -> NurdPredictor {
    NurdPredictor::new(
        NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default())),
    )
}

fn main() {
    // A small fleet of concurrent jobs, interleaved on one event clock.
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(80, 140)
        .with_checkpoints(12)
        .with_seed(0xF1EE7);
    let jobs = nurd::trace::generate_suite(&cfg);
    let (specs, events) = nurd::trace::fleet_events(&jobs, QUANTILE);

    let pool = ThreadPool::new(SHARDS);
    let mut engine = Engine::new(
        EngineConfig {
            shards: SHARDS,
            warmup_fraction: 0.04,
        },
        Box::new(|_spec: &JobSpec| Box::new(nurd_warm())),
    );
    for spec in &specs {
        engine.admit(spec.clone());
    }
    let n_events = events.len();
    let start = std::time::Instant::now();
    engine.push_all(events);
    engine.drain(&pool);
    let stats = engine.stats();
    let report = engine.finish(&pool);
    let elapsed = start.elapsed();

    println!(
        "fleet of {} jobs · {} events · {SHARDS} shards on a {}-thread pool\n",
        report.jobs.len(),
        n_events,
        pool.threads()
    );
    println!(
        "{:>5} {:>6} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "job", "tasks", "τ_stra(s)", "flagged", "TPR", "FPR", "F1"
    );
    for (r, spec) in report.jobs.iter().zip(&specs) {
        let c = &r.outcome.confusion;
        println!(
            "{:>5} {:>6} {:>9.0} {:>9} {:>7.2} {:>7.2} {:>7.2}",
            r.job,
            spec.task_count,
            spec.threshold,
            r.outcome.flagged_at.iter().flatten().count(),
            c.tpr(),
            c.fpr(),
            c.f1()
        );
    }
    println!(
        "\nmacro-F1 {:.3} · {:.0} events/s · shard loads (events) {:?} · orphans {}",
        report.macro_f1(),
        n_events as f64 / elapsed.as_secs_f64(),
        stats.events_per_shard,
        stats.orphan_events
    );

    // The engine's contract: per-job results are bit-for-bit those of a
    // sequential replay. Spot-check the first job.
    let reference = replay_job(
        &jobs[0],
        &mut nurd_warm(),
        &ReplayConfig {
            quantile: QUANTILE,
            warmup_fraction: 0.04,
        },
    );
    let served = &report.job(jobs[0].job_id()).expect("job reported").outcome;
    assert_eq!(
        served, &reference,
        "engine must equal sequential replay bit-for-bit"
    );
    println!(
        "determinism cross-check vs sequential replay: OK (job {})",
        jobs[0].job_id()
    );
}
