//! Straggler mitigation end to end: predict with NURD, relaunch flagged
//! tasks (Algorithms 2 and 3 of the paper), measure the completion-time
//! savings.
//!
//! ```sh
//! cargo run --release --example scheduler_rescue
//! ```

use nurd::core::{NurdConfig, NurdPredictor};
use nurd::sim::{replay_job, simulate_jct, ReplayConfig, SchedulerConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn main() {
    let config = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(150, 250)
        .with_seed(7);
    let jobs = nurd::trace::generate_suite(&config);

    println!("Straggler mitigation with NURD predictions\n");
    println!(
        "{:>5} {:>6} {:>12} {:>12} {:>10}",
        "job", "tasks", "baseline(s)", "mitigated(s)", "saved(%)"
    );

    // Unlimited machines (Algorithm 2): relaunch immediately.
    let mut total = 0.0;
    for job in &jobs {
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        let outcome = replay_job(job, &mut nurd, &ReplayConfig::default());
        let jct = simulate_jct(job, &outcome, &SchedulerConfig::default());
        total += jct.reduction_percent();
        println!(
            "{:>5} {:>6} {:>12.0} {:>12.0} {:>10.1}",
            job.job_id(),
            job.task_count(),
            jct.baseline,
            jct.mitigated,
            jct.reduction_percent()
        );
    }
    println!(
        "\nAlgorithm 2 (unlimited machines): average reduction {:.1}%",
        total / jobs.len() as f64
    );

    // Constrained pool (Algorithm 3): relaunches wait for free machines.
    println!("\nAlgorithm 3 (bounded machine pool), job 0:");
    let job = &jobs[0];
    let mut nurd = NurdPredictor::new(NurdConfig::default());
    let outcome = replay_job(job, &mut nurd, &ReplayConfig::default());
    for machines in [50, 100, 200, 400] {
        let jct = simulate_jct(
            job,
            &outcome,
            &SchedulerConfig {
                machines: Some(machines),
                ..SchedulerConfig::default()
            },
        );
        println!(
            "  {machines:>4} machines: baseline {:>7.0}s → mitigated {:>7.0}s ({:+.1}%)",
            jct.baseline,
            jct.mitigated,
            jct.reduction_percent()
        );
    }
}
