//! The closed mitigation loop **as an end-to-end gate**: traces are
//! served through the engine with a mitigation policy attached, the
//! committed action log is executed in the deterministic simulator, and
//! the run fails unless the economics and the determinism both hold:
//!
//! 1. the **oracle** (ground-truth cloning) strictly improves mean job
//!    completion time over **no mitigation**;
//! 2. the learned **threshold** policy lands between the two — it never
//!    loses to no-mitigation, and it cannot beat the oracle (if it did,
//!    the "oracle" wouldn't be one — a harness bug);
//! 3. the threshold policy's catch is a sane share of the oracle gap —
//!    it must capture *something* (> 2% of the oracle's improvement),
//!    or score egress has silently rotted;
//! 4. the action log is **bit-identical at shard counts {1, 2, 8}**.
//!
//! CI runs this example; it exits nonzero on any violated gate.
//!
//! ```sh
//! cargo run --release --example mitigation_smoke
//! ```

use nurd::mitigate::{oracle_mitigator, run_fleet, threshold_mitigator, FleetConfig, FleetRun};
use nurd::trace::{SuiteConfig, TraceStyle};

const JOBS: usize = 8;
const QUANTILE: f64 = 0.9;
const SCORE_THRESHOLD: f64 = 1.0;
const CLONE_BUDGET: usize = 8;
/// Minimum share of the oracle's JCT improvement the threshold policy
/// must capture. Deliberately loose — the gate is "the loop works", not
/// "the predictor is good" — but nonzero, so dead score egress fails.
const MIN_ORACLE_GAP_SHARE: f64 = 0.02;

fn fleet() -> Vec<nurd::data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(JOBS)
        .with_task_range(80, 120)
        .with_checkpoints(10)
        .with_seed(0x317);
    nurd::trace::generate_suite(&cfg)
}

fn config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        ..FleetConfig::default()
    }
}

fn report(name: &str, run: &FleetRun) {
    println!(
        "  {name:<12} jct-reduction {:6.2}%   wasted-work {:5.2}%   \
         clones {} (won {}, wasted {})   catch-rate {:.2}",
        run.summary.mean_jct_reduction_percent,
        run.summary.wasted_fraction * 100.0,
        run.summary.clones_issued,
        run.summary.clones_won,
        run.summary.clones_wasted,
        run.summary.catch_rate,
    );
}

fn main() {
    let jobs = fleet();
    println!("mitigation smoke: {JOBS} jobs, policies priced on ground truth");

    let baseline = run_fleet(&jobs, None, &config(4));
    let threshold = run_fleet(
        &jobs,
        Some(threshold_mitigator(SCORE_THRESHOLD, Some(CLONE_BUDGET))),
        &config(4),
    );
    let oracle = run_fleet(&jobs, Some(oracle_mitigator(&jobs, QUANTILE)), &config(4));
    report("none", &baseline);
    report("threshold", &threshold);
    report("oracle", &oracle);

    // Gate 1: the oracle strictly beats no-mitigation.
    let oracle_gain = oracle.summary.mean_jct_reduction_percent;
    assert_eq!(baseline.summary.mean_jct_reduction_percent, 0.0);
    assert!(
        oracle_gain > 0.0,
        "oracle gained nothing over no-mitigation — the loop is dead"
    );

    // Gate 2: the threshold policy sits between the baselines.
    let threshold_gain = threshold.summary.mean_jct_reduction_percent;
    assert!(
        threshold_gain >= 0.0,
        "threshold policy lost to no-mitigation: {threshold_gain:.3}%"
    );
    assert!(
        threshold_gain <= oracle_gain + 1e-9,
        "threshold policy beat the oracle ({threshold_gain:.3}% > {oracle_gain:.3}%) — \
         ground truth is broken"
    );

    // Gate 3: the oracle-gap sanity bound — the learned policy must
    // capture a nonzero share of what the oracle proves is available.
    assert!(
        threshold_gain >= MIN_ORACLE_GAP_SHARE * oracle_gain,
        "threshold policy captured {threshold_gain:.3}% of a {oracle_gain:.3}% \
         opportunity — below the {MIN_ORACLE_GAP_SHARE:.0e} sanity share; \
         score egress has likely rotted"
    );

    // Gate 4: bit-identical action logs across shard counts.
    for shards in [1usize, 2, 8] {
        let rerun = run_fleet(
            &jobs,
            Some(threshold_mitigator(SCORE_THRESHOLD, Some(CLONE_BUDGET))),
            &config(shards),
        );
        assert_eq!(
            rerun.action_log, threshold.action_log,
            "action log diverged at {shards} shards"
        );
    }
    println!(
        "  action log: {} records, bit-identical at shards {{1, 2, 8}}",
        threshold.action_log.len()
    );
    println!("mitigation smoke: all gates passed");
}
