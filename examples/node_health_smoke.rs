//! The node-health loop **as an end-to-end gate**: a seeded fleet with
//! one planted sick machine is served twice — once to let the
//! [`HealthAggregator`] observe, once with the frozen verdicts driving
//! [`NodeAwarePolicy`] quarantines — and the run fails unless the
//! detection and the economics both hold:
//!
//! 1. the aggregator's quarantine list is **exactly the planted sick
//!    node** — no miss, no false conviction of a healthy machine;
//! 2. the node-aware policy **beats the node-blind threshold policy** on
//!    mean-JCT reduction: knowing *where* a task runs must be worth
//!    something over per-task scores alone;
//! 3. quarantines actually flow: committed `Quarantine` records exist,
//!    and every one targets a task placed on the sick machine;
//! 4. the node-aware action log is **bit-identical at shard counts
//!    {1, 2, 8}** — verdicts are frozen between passes, so the node axis
//!    must not cost determinism.
//!
//! CI runs this example; it exits nonzero on any violated gate.
//!
//! ```sh
//! cargo run --release --example node_health_smoke
//! ```
//!
//! [`HealthAggregator`]: nurd::health::HealthAggregator
//! [`NodeAwarePolicy`]: nurd::mitigate::NodeAwarePolicy

use nurd::data::MitigationAction;
use nurd::health::NodeVerdict;
use nurd::mitigate::{
    run_fleet, run_node_fleet, threshold_mitigator, FleetConfig, NodeFleetConfig,
};
use nurd::sim::MitigationSimConfig;
use nurd::trace::{NodeModel, NodeModelConfig, SuiteConfig, TraceStyle};

const JOBS: usize = 8;
const BLIND_THRESHOLD: f64 = 1.0;
const CLONE_BUDGET: usize = 8;

fn node_model() -> NodeModelConfig {
    NodeModelConfig::new(12).with_unhealthy(1, 2)
}

fn suite() -> SuiteConfig {
    SuiteConfig::new(TraceStyle::Google)
        .with_jobs(JOBS)
        .with_task_range(80, 120)
        .with_checkpoints(10)
        .with_seed(0x317)
        .with_node_model(node_model())
}

fn fleet(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        sim: MitigationSimConfig {
            node_resample: true,
            ..MitigationSimConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn node_config(shards: usize) -> NodeFleetConfig {
    NodeFleetConfig {
        fleet: fleet(shards),
        score_threshold: 1.2,
        watch_threshold: 1.2,
        ..NodeFleetConfig::default()
    }
}

fn main() {
    let cfg = suite();
    let jobs = nurd::trace::generate_suite(&cfg);
    let model = NodeModel::build(&node_model(), cfg.straggler_severity);
    println!(
        "node health smoke: {JOBS} jobs on {} nodes, planted sick {:?}",
        node_model().nodes,
        model.sick_nodes(),
    );

    let aware = run_node_fleet(&jobs, &node_config(4));
    let blind = run_fleet(
        &jobs,
        Some(threshold_mitigator(BLIND_THRESHOLD, Some(CLONE_BUDGET))),
        &fleet(4),
    );

    // Gate 1: conviction is exact.
    let convicted: Vec<u32> = aware
        .verdicts
        .iter()
        .filter(|(_, v)| **v == NodeVerdict::Quarantine)
        .map(|(n, _)| *n)
        .collect();
    println!("  verdicts: {:?}", aware.verdicts);
    assert_eq!(
        convicted,
        model.sick_nodes(),
        "aggregator convicted {convicted:?}, planted {:?}",
        model.sick_nodes(),
    );

    // Gate 2: the node axis pays on mean JCT.
    let aware_gain = aware.mitigated.summary.mean_jct_reduction_percent;
    let blind_gain = blind.summary.mean_jct_reduction_percent;
    println!(
        "  blind-threshold  jct-reduction {blind_gain:6.2}%   wasted-work {:5.2}%",
        blind.summary.wasted_fraction * 100.0,
    );
    println!(
        "  node-aware       jct-reduction {aware_gain:6.2}%   wasted-work {:5.2}%   \
         quarantines {}",
        aware.mitigated.summary.wasted_fraction * 100.0,
        aware.mitigated.summary.quarantines,
    );
    assert!(
        aware_gain > blind_gain,
        "node-aware {aware_gain:.2}% did not beat node-blind {blind_gain:.2}%"
    );

    // Gate 3: quarantines flow, and only at the sick machine.
    let quarantines: Vec<_> = aware
        .mitigated
        .action_log
        .iter()
        .filter(|r| r.action == MitigationAction::Quarantine)
        .collect();
    assert!(!quarantines.is_empty(), "no quarantines committed");
    for record in &quarantines {
        let job = jobs.iter().find(|j| j.job_id() == record.job).unwrap();
        let nodes = job.node_placement().unwrap();
        assert!(
            model.sick_nodes().contains(&nodes[record.task]),
            "job {} task {} quarantined on healthy node {}",
            record.job,
            record.task,
            nodes[record.task],
        );
    }

    // Gate 4: bit-identical node-aware action logs across shard counts.
    for shards in [1usize, 2, 8] {
        let rerun = run_node_fleet(&jobs, &node_config(shards));
        assert_eq!(
            rerun.verdicts, aware.verdicts,
            "verdicts diverged at {shards} shards"
        );
        assert_eq!(
            rerun.mitigated.action_log, aware.mitigated.action_log,
            "action log diverged at {shards} shards"
        );
    }
    println!(
        "  action log: {} records ({} quarantines), bit-identical at shards {{1, 2, 8}}",
        aware.mitigated.action_log.len(),
        quarantines.len(),
    );
    println!("node health smoke: all gates passed");
}
