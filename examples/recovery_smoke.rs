//! Crash-recovery smoke test **as an end-to-end gate**: a persistent
//! service streams a fleet from 3 producer threads, the write-ahead log
//! is killed mid-run by a fault injector (with a torn half-written tail
//! record — what a real `kill -9` leaves), the service is dropped
//! without `close()`, and a fresh service recovers from the directory.
//! Producers resume each job's stream from the recovered per-job durable
//! event counts, and every job's final outcome is asserted bit-for-bit
//! equal to a never-crashed sequential replay.
//!
//! CI runs this example as the gate on the persistence path: it exits
//! nonzero on any panic, on any recovery error, or on any divergence
//! from sequential replay.
//!
//! ```sh
//! cargo run --release --example recovery_smoke
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use nurd::core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd::data::{JobSpec, TaskEvent};
use nurd::serve::{
    EngineConfig, EngineService, FaultInjector, FsyncPolicy, OverloadPolicy, PersistenceConfig,
    ServiceConfig,
};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

const SHARDS: usize = 4;
const PRODUCERS: usize = 3;
const QUANTILE: f64 = 0.9;
const WARMUP: f64 = 0.04;

fn nurd_warm() -> NurdPredictor {
    NurdPredictor::new(
        NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default())),
    )
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        warmup_fraction: WARMUP,
        queue_capacity: Some(256),
        overload: OverloadPolicy::Block,
        balance: None,
    }
}

/// Pushes each stream on its own thread, skipping the first
/// `events_seen[job]` events of every job (the recovered durable prefix).
fn run_producers(
    service: &EngineService,
    streams: &[Vec<TaskEvent>],
    events_seen: &BTreeMap<u64, u64>,
) {
    let producers: Vec<_> = streams
        .iter()
        .map(|stream| {
            let handle = service.handle();
            let stream = stream.clone();
            let seen = events_seen.clone();
            std::thread::spawn(move || {
                let mut position: BTreeMap<u64, u64> = BTreeMap::new();
                for event in stream {
                    let slot = position.entry(event.job()).or_insert(0);
                    let index = *slot;
                    *slot += 1;
                    if index < seen.get(&event.job()).copied().unwrap_or(0) {
                        continue;
                    }
                    assert!(handle.push(event), "push rejected on a live service");
                }
            })
        })
        .collect();
    for producer in producers {
        producer.join().expect("producer panicked");
    }
}

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(5)
        .with_task_range(60, 100)
        .with_checkpoints(10)
        .with_seed(0xC4A5);
    let jobs = nurd::trace::generate_suite(&cfg);
    let streams = nurd::trace::producer_streams(&jobs, PRODUCERS, QUANTILE, 0xC4A5);
    let n_events: usize = streams.iter().map(Vec::len).sum();

    let dir = std::env::temp_dir().join(format!("nurd-recovery-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Kill the WAL after ~40% of the fleet's events, tearing the record
    // in flight — the torn frame a crash mid-`write` leaves on disk.
    let crash_budget = (n_events as u64) * 2 / 5;
    let fault = FaultInjector::crash_after_wal_records(crash_budget).with_torn_tail();
    let mut persistence = PersistenceConfig::new(&dir);
    persistence.fsync = FsyncPolicy::Always;
    persistence.fault = Some(Arc::clone(&fault));

    println!(
        "streaming {} jobs · {n_events} events · {PRODUCERS} producers → {SHARDS} shards; \
         WAL dies after {crash_budget} records (torn tail), then the process \"crashes\"",
        jobs.len(),
    );

    let doomed = EngineService::start_persistent(
        engine_config(),
        ServiceConfig::default(),
        persistence,
        Box::new(|_spec: &JobSpec| Box::new(nurd_warm())),
    )
    .expect("start_persistent");
    run_producers(&doomed, &streams, &BTreeMap::new());
    doomed.quiesce();
    drop(doomed); // the crash: no close(), no shutdown snapshot

    let (revived, recover) = EngineService::recover(
        PersistenceConfig::new(&dir),
        engine_config(),
        ServiceConfig::default(),
        Box::new(|_spec: &JobSpec| Box::new(nurd_warm())),
    )
    .expect("recover");
    let durable: u64 = recover.events_seen.values().sum();
    println!(
        "recovered: snapshot generation {:?} · {} WAL events replayed · {} torn tails · \
         {} jobs resumed mid-stream · {} finalized reports carried · {durable} durable events",
        recover.snapshot_generation,
        recover.wal_events_replayed,
        recover.wal_truncated_tails,
        recover.resumed_jobs,
        recover.finalized_jobs,
    );
    assert!(
        durable >= crash_budget.min(n_events as u64),
        "accepted-event loss up to the last fsync: {durable} < {crash_budget}"
    );
    assert!(
        recover.wal_truncated_tails >= 1,
        "the torn tail record must be detected (and discarded)"
    );

    // Resume every job from its durable prefix and finish the fleet.
    run_producers(&revived, &streams, &recover.events_seen);
    revived.quiesce();
    let mut reports = revived.take_finalized();
    let stats = revived.stats();
    let final_report = revived.close();
    reports.extend(final_report.jobs);

    assert_eq!(reports.len(), jobs.len(), "every job must finalize");
    assert_eq!(
        final_report.overload.lost_events(),
        0,
        "Block policy must not lose events"
    );

    // The contract: restart equals uninterrupted — every recovered job's
    // outcome is bit-for-bit the never-crashed sequential replay.
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    for job in &jobs {
        let reference = replay_job(job, &mut nurd_warm(), &replay_cfg);
        let served = &reports
            .iter()
            .find(|r| r.job == job.job_id())
            .expect("job reported")
            .outcome;
        assert_eq!(
            served,
            &reference,
            "recovered engine diverged from sequential replay (job {})",
            job.job_id()
        );
    }
    println!(
        "restart-equals-uninterrupted: OK ({} jobs · {} WAL appends · {} snapshots written)",
        jobs.len(),
        stats.wal_appended,
        stats.snapshots_written,
    );
    std::fs::remove_dir_all(&dir).ok();
}
