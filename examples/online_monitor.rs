//! A look inside NURD while a job runs: per-checkpoint propensity scores,
//! weights and adjusted predictions for selected tasks — the quantities of
//! Algorithm 1, live.
//!
//! ```sh
//! cargo run --release --example online_monitor
//! ```

use nurd::core::{NurdConfig, NurdPredictor};
use nurd::data::{Checkpoint, FinishedTask, JobContext, OnlinePredictor, RunningTask};
use nurd::trace::{SuiteConfig, TraceStyle};

fn main() {
    let config = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(150, 150)
        .with_seed(0x0b5)
        .with_long_tail_fraction(1.0);
    let job = nurd::trace::generate_job(&config, 0);
    let threshold = job.straggler_threshold(0.9);
    let warmup = job.warmup_checkpoint(0.04);

    let mut nurd = NurdPredictor::new(NurdConfig::default());
    nurd.begin_job(&JobContext {
        threshold,
        task_count: job.task_count(),
        feature_dim: job.feature_dim(),
        oracle: &job,
    });

    // Watch the slowest task (a straggler) and the median task.
    let mut order: Vec<usize> = (0..job.task_count()).collect();
    order.sort_by(|&a, &b| {
        job.tasks()[a]
            .latency()
            .partial_cmp(&job.tasks()[b].latency())
            .unwrap()
    });
    let straggler = *order.last().unwrap();
    let median_task = order[order.len() / 2];
    println!(
        "watching straggler task {straggler} (latency {:.0}s) and median task {median_task} \
         (latency {:.0}s); τ = {:.0}s\n",
        job.tasks()[straggler].latency(),
        job.tasks()[median_task].latency(),
        threshold
    );
    println!(
        "{:>4} {:>8} | {:>22} | {:>22}",
        "ckpt", "time(s)", "straggler  ŷ / z / ŷadj", "median     ŷ / z / ŷadj"
    );

    for (k, &time) in job.checkpoint_times().iter().enumerate() {
        if k < warmup || time >= threshold {
            continue;
        }
        let mut finished = Vec::new();
        let mut running = Vec::new();
        for task in job.tasks() {
            if task.latency() <= time {
                finished.push(FinishedTask {
                    id: task.id(),
                    features: task.snapshot(k),
                    latency: task.latency(),
                });
            } else {
                running.push(RunningTask {
                    id: task.id(),
                    features: task.snapshot(k),
                });
            }
        }
        let checkpoint = Checkpoint {
            ordinal: k,
            time,
            finished,
            running,
        };
        let scores = nurd.score_running(&checkpoint);
        let cell = |id: usize| -> String {
            scores
                .iter()
                .find(|s| s.id == id)
                .map_or("   (finished)        ".into(), |s| {
                    format!("{:6.0} / {:4.2} / {:6.0}", s.raw, s.propensity, s.adjusted)
                })
        };
        println!(
            "{k:>4} {time:>8.0} | {:>22} | {:>22}",
            cell(straggler),
            cell(median_task)
        );
    }
    println!(
        "\ncalibration: delta = {:?} (positive damps false positives; \
         see Algorithm 1 lines 4-6)",
        nurd.delta()
    );
}
