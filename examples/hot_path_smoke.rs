//! Scoring hot-path smoke test **as an end-to-end gate**: the flattened
//! structure-of-arrays scoring path (`flat_scoring = true`, the default)
//! must be *actually exercised* — not silently skipped — and must stay
//! bit-identical to the pointer-tree reference everywhere it can be
//! observed:
//!
//! 1. **Kernel**: a fitted latency head is flattened and batch-scored;
//!    the output must equal the pointer walk bit for bit, on both the
//!    raw-feature and the binned kernels — at every supported lane width,
//!    with the multi-row lane kernel's chunk counter proving which kernel
//!    actually ran.
//! 2. **Predictor**: a default-config [`NurdPredictor`] replays a job and
//!    the [`NurdPredictor::flat_batches`] counter must show the SoA
//!    kernel ran at (at least) every scored checkpoint, while a
//!    `flat_scoring = false` twin shows zero — and both produce the same
//!    replay outcome. The default lane width's replay must also equal a
//!    `scoring_lanes = 1` twin's bit for bit, with
//!    [`NurdPredictor::lane_chunks`] nonzero only for the wide one.
//! 3. **Engine**: a staggered multi-job fleet served concurrently at
//!    shard counts {1, 2, 8} yields one identical report under flat and
//!    pointer scoring, with a nonzero number of flagged tasks (so the
//!    equality is not vacuous).
//!
//! CI runs this example as the gate on the hot path: it exits nonzero on
//! any panic or divergence.
//!
//! ```sh
//! cargo run --release --example hot_path_smoke
//! ```

use nurd::core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd::data::{JobSpec, TaskEvent};
use nurd::linalg::MatrixView;
use nurd::ml::{GbtConfig, GradientBoosting, SquaredLoss, TreeConfig};
use nurd::runtime::ThreadPool;
use nurd::serve::{Engine, EngineConfig, EngineReport, PredictorFactory};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

const QUANTILE: f64 = 0.9;
const WARMUP: f64 = 0.04;

fn config(flat: bool) -> NurdConfig {
    NurdConfig::default()
        .with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default()))
        .with_flat_scoring(flat)
}

fn run_engine(
    jobs: &[nurd::data::JobTrace],
    events: Vec<TaskEvent>,
    shards: usize,
    pool: &ThreadPool,
    flat: bool,
) -> EngineReport {
    let factory: PredictorFactory =
        Box::new(move |_spec: &JobSpec| Box::new(NurdPredictor::new(config(flat))));
    let engine = Engine::new(
        EngineConfig {
            shards,
            warmup_fraction: WARMUP,
            ..EngineConfig::default()
        },
        factory,
    );
    for job in jobs {
        engine.admit(JobSpec::of_trace(job, QUANTILE));
    }
    engine.push_all_sync(events);
    engine.finish(pool)
}

/// Deterministic synthetic regression rows (no RNG in smoke gates).
fn synthetic_rows(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(d);
        let mut acc = 0.0;
        for f in 0..d {
            let v = ((i * 2654435761 + f * 40503) % 10_000) as f64 / 10_000.0;
            acc += v * (f as f64 + 1.0);
            row.push(v);
        }
        xs.push(row);
        ys.push(acc + ((i % 17) as f64) * 0.25);
    }
    (xs, ys)
}

fn main() {
    // 1. Kernel-level bit identity: flatten a serving-shaped ensemble
    //    (50 rounds × depth 3) and score a batch both ways.
    let (xs, ys) = synthetic_rows(1500, 8);
    let rows: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
    let gbt = GbtConfig {
        n_rounds: 50,
        learning_rate: 0.15,
        tree: TreeConfig {
            max_depth: 3,
            min_child_weight: 2.0,
            ..TreeConfig::default()
        },
        subsample: 1.0,
        seed: 17,
    };
    let model = GradientBoosting::fit_view(MatrixView::RowSlices(&rows), &ys, SquaredLoss, &gbt)
        .expect("fit");
    let flat = model.flatten();
    assert!(flat.tree_count() > 0, "flattened ensemble is empty");
    let batch: Vec<&[f64]> = rows[..256].to_vec();
    let mut scratch = Vec::new();
    flat.predict_view_into(MatrixView::RowSlices(&batch), &mut scratch);
    let pointer = model.predict_view(MatrixView::RowSlices(&batch));
    assert_eq!(
        scratch, pointer,
        "flat kernel is not bit-identical to the pointer walk"
    );
    for lanes in nurd::ml::SUPPORTED_LANES {
        let forest = model.flatten().with_lanes(lanes);
        let mut out = Vec::new();
        forest.predict_view_into(MatrixView::RowSlices(&batch), &mut out);
        assert_eq!(
            out, pointer,
            "lane-{lanes} kernel is not bit-identical to the pointer walk"
        );
        if lanes > 1 {
            assert!(
                forest.lane_chunks() > 0,
                "lane-{lanes} kernel never took the multi-row path"
            );
        } else {
            assert_eq!(
                forest.lane_chunks(),
                0,
                "scalar kernel incremented the lane counter"
            );
        }
    }
    println!(
        "kernel: {} trees / {} nodes flattened, {}-row batch bit-identical to pointer walk \
         at lane widths {:?}",
        flat.tree_count(),
        flat.node_count(),
        batch.len(),
        nurd::ml::SUPPORTED_LANES,
    );

    // 2. Predictor-level: the flat path must actually run under the
    //    default configuration (flat_scoring = true), once per scored
    //    checkpoint, and change nothing observable.
    let suite = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(3)
        .with_task_range(60, 90)
        .with_checkpoints(10)
        .with_seed(0x407_u64);
    let jobs = nurd::trace::generate_suite(&suite);
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    assert!(
        NurdConfig::default().flat_scoring,
        "flat scoring must be the default"
    );
    let mut flat_batches = 0usize;
    let mut lane_chunks = 0usize;
    for job in &jobs {
        let mut with_flat = NurdPredictor::new(config(true));
        let mut with_pointer = NurdPredictor::new(config(false));
        let mut with_scalar_lanes = NurdPredictor::new(config(true).with_scoring_lanes(1));
        let out_flat = replay_job(job, &mut with_flat, &replay_cfg);
        let out_pointer = replay_job(job, &mut with_pointer, &replay_cfg);
        let out_scalar = replay_job(job, &mut with_scalar_lanes, &replay_cfg);
        assert_eq!(
            out_flat,
            out_pointer,
            "flat and pointer replay diverged on job {}",
            job.job_id()
        );
        assert_eq!(
            out_flat,
            out_scalar,
            "default lane width and scoring_lanes = 1 diverged on job {}",
            job.job_id()
        );
        assert!(
            with_flat.flat_batches() > 0,
            "job {} never scored through the flat kernel — hot path not exercised",
            job.job_id()
        );
        assert!(
            with_flat.lane_chunks() > 0,
            "job {} never took the multi-row lane kernel at the default width",
            job.job_id()
        );
        assert_eq!(
            with_scalar_lanes.lane_chunks(),
            0,
            "scoring_lanes = 1 predictor used the lane kernel"
        );
        assert_eq!(
            with_pointer.flat_batches(),
            0,
            "pointer-path predictor used the flat kernel"
        );
        flat_batches += with_flat.flat_batches();
        lane_chunks += with_flat.lane_chunks();
    }
    println!(
        "predictor: {} jobs replayed, {flat_batches} running-set batches through the SoA kernel \
         ({lane_chunks} lane groups), outcomes bit-identical to the pointer and scalar-lane paths",
        jobs.len(),
    );

    // 3. Engine-level: the concurrent barrier path (pooled scratch,
    //    checkpoint views) over a staggered fleet, flat vs pointer, at
    //    shard counts {1, 2, 8}.
    let pool = ThreadPool::new(2);
    let events = nurd::trace::staggered_fleet_events(&jobs, 0.9, 300.0, 0x407);
    let reference = run_engine(&jobs, events.clone(), 1, &pool, false);
    let flagged: usize = reference
        .jobs
        .iter()
        .map(|r| r.outcome.flagged_at.iter().flatten().count())
        .sum();
    assert!(flagged > 0, "no task ever flagged — comparison is vacuous");
    for shards in [1usize, 2, 8] {
        let report = run_engine(&jobs, events.clone(), shards, &pool, true);
        assert_eq!(
            report, reference,
            "flat engine at {shards} shards diverged from the pointer engine"
        );
    }
    println!(
        "engine: {} events served at shards {{1, 2, 8}}, {flagged} tasks flagged, \
         flat reports identical to pointer",
        events.len(),
    );
    println!("hot-path smoke: OK");
}
