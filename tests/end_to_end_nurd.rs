//! End-to-end integration: NURD against the replay protocol on generated
//! traces, compared with an uncorrected supervised baseline.

use nurd::core::{NurdConfig, NurdPredictor};
use nurd::data::{Checkpoint, JobContext, OnlinePredictor};
use nurd::ml::{GbtConfig, GradientBoosting, SquaredLoss};
use nurd::sim::{replay_job, MethodSummary, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

/// Plain supervised gradient boosting on finished tasks with no
/// reweighting — the paper's GBTR baseline, inlined for this test.
struct PlainGbtr {
    threshold: f64,
}

impl OnlinePredictor for PlainGbtr {
    fn name(&self) -> &str {
        "GBTR"
    }
    fn begin_job(&mut self, ctx: &JobContext<'_>) {
        self.threshold = ctx.threshold;
    }
    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let x = checkpoint.finished_features();
        let y = checkpoint.finished_latencies();
        let Ok(model) = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()) else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .filter(|t| model.predict(t.features) >= self.threshold)
            .map(|t| t.id)
            .collect()
    }
}

fn suite(style: TraceStyle, jobs: usize) -> Vec<nurd::data::JobTrace> {
    let cfg = SuiteConfig::new(style)
        .with_jobs(jobs)
        .with_task_range(100, 160)
        .with_checkpoints(20)
        .with_seed(0xE2E);
    nurd::trace::generate_suite(&cfg)
}

fn evaluate(
    jobs: &[nurd::data::JobTrace],
    make: impl Fn() -> Box<dyn OnlinePredictor>,
) -> MethodSummary {
    let confusions: Vec<_> = jobs
        .iter()
        .map(|job| {
            let mut p = make();
            replay_job(job, p.as_mut(), &ReplayConfig::default()).confusion
        })
        .collect();
    MethodSummary::from_confusions(&confusions)
}

#[test]
fn nurd_beats_plain_gbtr_on_google_style_traces() {
    let jobs = suite(TraceStyle::Google, 8);
    let nurd = evaluate(&jobs, || {
        Box::new(NurdPredictor::new(NurdConfig::default()))
    });
    let gbtr = evaluate(&jobs, || Box::new(PlainGbtr { threshold: 0.0 }));
    // The paper's headline: GBTR underpredicts (low TPR) because it trains
    // only on non-stragglers; NURD's reweighting recovers the stragglers.
    assert!(
        nurd.f1 > gbtr.f1,
        "NURD F1 {:.3} must beat GBTR F1 {:.3}",
        nurd.f1,
        gbtr.f1
    );
    assert!(
        nurd.tpr > gbtr.tpr,
        "NURD TPR {:.3} must beat GBTR TPR {:.3}",
        nurd.tpr,
        gbtr.tpr
    );
    assert!(nurd.f1 > 0.4, "NURD F1 {:.3} unexpectedly low", nurd.f1);
}

#[test]
fn nurd_has_usable_f1_on_alibaba_style_traces() {
    let jobs = suite(TraceStyle::Alibaba, 8);
    let nurd = evaluate(&jobs, || {
        Box::new(NurdPredictor::new(NurdConfig::default()))
    });
    // Alibaba's 4 weak features compress everyone's F1 (paper: 0.59).
    assert!(
        nurd.f1 > 0.25,
        "NURD F1 {:.3} too low even for weak features",
        nurd.f1
    );
}

#[test]
fn calibration_reduces_false_positives_vs_nc() {
    let jobs = suite(TraceStyle::Google, 8);
    let nurd = evaluate(&jobs, || {
        Box::new(NurdPredictor::new(NurdConfig::default()))
    });
    let nc = evaluate(&jobs, || {
        Box::new(NurdPredictor::new(NurdConfig::without_calibration()))
    });
    // Table 3: NURD-NC has high TPR but much higher FPR; calibration is
    // what keeps precision usable.
    assert!(
        nurd.fpr < nc.fpr,
        "calibrated FPR {:.3} must undercut NC FPR {:.3}",
        nurd.fpr,
        nc.fpr
    );
    assert!(
        nurd.f1 > nc.f1,
        "calibrated F1 {:.3} must beat NC F1 {:.3}",
        nurd.f1,
        nc.f1
    );
}
