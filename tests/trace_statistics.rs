//! Statistical integration tests on the trace generator: the planted
//! structure that the whole evaluation rests on must actually be there.

use nurd::trace::{CauseMix, StragglerCause, SuiteConfig, TraceStyle};

fn detailed_suite(cfg: &SuiteConfig) -> Vec<(nurd::data::JobTrace, Vec<nurd::trace::TaskPlan>)> {
    (0..cfg.jobs as u64)
        .map(|id| nurd::trace::generate_job_detailed(cfg, id))
        .collect()
}

#[test]
fn straggler_fraction_tracks_configuration() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(200, 300)
        .with_checkpoints(8)
        .with_straggler_fraction(0.11)
        .with_seed(1);
    let mut planted = 0usize;
    let mut total = 0usize;
    for (_, plans) in detailed_suite(&cfg) {
        planted += plans.iter().filter(|p| p.cause.is_some()).count();
        total += plans.len();
    }
    let frac = planted as f64 / total as f64;
    assert!((0.08..0.14).contains(&frac), "planted fraction {frac}");
}

#[test]
fn cause_mix_proportions_hold_in_aggregate() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(10)
        .with_task_range(200, 300)
        .with_checkpoints(8)
        .with_cause_mix(CauseMix {
            interference: 0.5,
            data_skew: 0.5,
            eviction: 0.0,
            opaque: 0.0,
        })
        .with_seed(2);
    let mut interference = 0usize;
    let mut skew = 0usize;
    let mut other = 0usize;
    for (_, plans) in detailed_suite(&cfg) {
        for p in plans.iter().filter_map(|p| p.cause) {
            match p {
                StragglerCause::Interference => interference += 1,
                StragglerCause::DataSkew => skew += 1,
                _ => other += 1,
            }
        }
    }
    assert_eq!(other, 0, "forbidden causes were planted");
    let ratio = interference as f64 / (interference + skew) as f64;
    assert!((0.4..0.6).contains(&ratio), "interference share {ratio}");
}

#[test]
fn planted_stragglers_dominate_the_top_decile_in_long_tail_jobs() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(250, 300)
        .with_checkpoints(8)
        .with_long_tail_fraction(1.0)
        .with_seed(3);
    let mut planted_in_top = 0usize;
    let mut top = 0usize;
    for (job, plans) in detailed_suite(&cfg) {
        let thr = job.straggler_threshold(0.9);
        for (task, plan) in job.tasks().iter().zip(&plans) {
            if task.latency() >= thr {
                top += 1;
                planted_in_top += usize::from(plan.cause.is_some());
            }
        }
    }
    let share = planted_in_top as f64 / top as f64;
    assert!(
        share > 0.75,
        "planted stragglers should dominate the long-tail top decile, got {share:.2}"
    );
}

#[test]
fn decoys_are_fast_but_feature_loud() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(4)
        .with_task_range(250, 300)
        .with_checkpoints(8)
        .with_decoy_fraction(0.15)
        .with_seed(4);
    for (job, plans) in detailed_suite(&cfg) {
        let thr = job.straggler_threshold(0.9);
        let decoys: Vec<usize> = plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.decoy)
            .map(|(i, _)| i)
            .collect();
        assert!(!decoys.is_empty());
        // Decoys are never planted stragglers, and mostly not top-decile.
        let slow_decoys = decoys
            .iter()
            .filter(|&&i| job.tasks()[i].latency() >= thr)
            .count();
        assert!(
            (slow_decoys as f64) < 0.25 * decoys.len() as f64,
            "too many decoys are slow: {slow_decoys}/{}",
            decoys.len()
        );
    }
}

#[test]
fn long_tail_family_is_heavier_tailed_than_close_tail() {
    // The robust family invariant: a pure long-tail suite has a much
    // larger max/median latency ratio than a pure close-tail suite.
    // (Classifying single jobs by threshold-vs-half-max is noisy because
    // planted stragglers can stretch a close-tail job's maximum.)
    let ratio = |frac: f64| -> f64 {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(10)
            .with_task_range(100, 140)
            .with_checkpoints(8)
            .with_long_tail_fraction(frac)
            .with_seed(5);
        let jobs = nurd::trace::generate_suite(&cfg);
        jobs.iter()
            .map(|job| {
                let mut lat = job.latencies();
                lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
                job.max_latency() / lat[lat.len() / 2]
            })
            .sum::<f64>()
            / jobs.len() as f64
    };
    let long = ratio(1.0);
    let close = ratio(0.0);
    assert!(
        long > 1.5 * close,
        "long-tail max/median {long:.2} should dwarf close-tail {close:.2}"
    );
}

#[test]
fn feature_snapshots_never_regress_for_counters() {
    // EV and FL are monotone counters within any task's lifetime.
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(2)
        .with_task_range(100, 140)
        .with_checkpoints(16)
        .with_seed(6);
    for job in nurd::trace::generate_suite(&cfg) {
        for task in job.tasks() {
            for pair in task.snapshots().windows(2) {
                assert!(pair[1][13] >= pair[0][13], "EV regressed");
                assert!(pair[1][14] >= pair[0][14], "FL regressed");
            }
        }
    }
}

#[test]
fn alibaba_jobs_never_leak_google_only_signals() {
    let cfg = SuiteConfig::new(TraceStyle::Alibaba)
        .with_jobs(2)
        .with_task_range(100, 140)
        .with_checkpoints(8)
        .with_seed(7);
    for job in nurd::trace::generate_suite(&cfg) {
        assert_eq!(job.feature_dim(), 4);
        assert!(job
            .feature_names()
            .iter()
            .all(|n| ["cpu_avg", "cpu_max", "mem_avg", "mem_max"].contains(&n.as_str())));
    }
}
