//! Tier-1 acceptance for the closed mitigation loop: score egress →
//! policy → committed action log → simulated execution, through the
//! umbrella crate's public API.

use nurd::mitigate::{
    noop_mitigator, oracle_mitigator, run_fleet, threshold_mitigator, FleetConfig,
};
use nurd::trace::{SuiteConfig, TraceStyle};

const QUANTILE: f64 = 0.9;

fn suite(seed: u64) -> Vec<nurd::data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(4)
        .with_task_range(50, 70)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd::trace::generate_suite(&cfg)
}

#[test]
fn mitigation_orders_oracle_threshold_and_baseline() {
    let jobs = suite(0x10_0b);
    let config = FleetConfig::default();
    let baseline = run_fleet(&jobs, None, &config);
    let noop = run_fleet(&jobs, Some(noop_mitigator()), &config);
    let threshold = run_fleet(&jobs, Some(threshold_mitigator(1.0, Some(8))), &config);
    let oracle = run_fleet(&jobs, Some(oracle_mitigator(&jobs, QUANTILE)), &config);

    // A noop policy is observationally the no-mitigation baseline.
    assert!(noop.action_log.is_empty());
    assert_eq!(
        noop.summary.mean_jct_reduction_percent,
        baseline.summary.mean_jct_reduction_percent
    );
    assert_eq!(baseline.summary.mean_jct_reduction_percent, 0.0);
    assert_eq!(baseline.summary.wasted_fraction, 0.0);

    // The oracle strictly improves on no-mitigation, and the learned
    // threshold policy lands in between (at worst equal to either end).
    assert!(oracle.summary.mean_jct_reduction_percent > 0.0);
    assert!(threshold.summary.mean_jct_reduction_percent >= 0.0);
    assert!(
        threshold.summary.mean_jct_reduction_percent
            <= oracle.summary.mean_jct_reduction_percent + 1e-9
    );

    // Work conservation: every task completes exactly once under every
    // policy.
    for run in [&baseline, &noop, &threshold, &oracle] {
        for (job, outcome) in jobs.iter().zip(&run.outcomes) {
            assert_eq!(outcome.completions.len(), job.task_count());
        }
    }
}

#[test]
fn action_log_is_shard_count_invariant() {
    let jobs = suite(0x5AAD);
    let runs: Vec<_> = [1usize, 2]
        .iter()
        .map(|&shards| {
            run_fleet(
                &jobs,
                Some(threshold_mitigator(1.0, Some(4))),
                &FleetConfig {
                    shards,
                    ..FleetConfig::default()
                },
            )
        })
        .collect();
    assert_eq!(runs[0].action_log, runs[1].action_log);
    assert_eq!(runs[0].reports, runs[1].reports);
}
