//! Cross-crate integration tests: invariants of the evaluation protocol
//! that every method and every trace must satisfy.

use nurd::data::{Checkpoint, JobContext, OnlinePredictor};
use nurd::sim::{replay_job, simulate_jct, ReplayConfig, SchedulerConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn small_suite(style: TraceStyle, jobs: usize, seed: u64) -> Vec<nurd::data::JobTrace> {
    let cfg = SuiteConfig::new(style)
        .with_jobs(jobs)
        .with_task_range(60, 100)
        .with_checkpoints(12)
        .with_seed(seed);
    nurd::trace::generate_suite(&cfg)
}

/// Flags everything it sees — the adversarial upper bound on flagging.
struct FlagAll;
impl OnlinePredictor for FlagAll {
    fn name(&self) -> &str {
        "ALL"
    }
    fn predict(&mut self, c: &Checkpoint<'_>) -> Vec<usize> {
        c.running.iter().map(|r| r.id).collect()
    }
}

#[test]
fn every_registry_method_satisfies_conservation() {
    let jobs = small_suite(TraceStyle::Google, 2, 0xC0);
    for spec in nurd::baselines::registry() {
        for job in &jobs {
            let mut p = spec.build();
            let out = replay_job(job, p.as_mut(), &ReplayConfig::default());
            assert_eq!(
                out.confusion.total(),
                job.task_count(),
                "{} violates task conservation",
                spec.name
            );
            // Flag ordinals are within range and after warmup.
            for flag in out.flagged_at.iter().flatten() {
                assert!(*flag < job.checkpoint_count(), "{}", spec.name);
                assert!(*flag >= out.warmup_checkpoint, "{}", spec.name);
            }
        }
    }
}

#[test]
fn every_registry_method_is_deterministic() {
    let jobs = small_suite(TraceStyle::Alibaba, 1, 0xC1);
    for spec in nurd::baselines::registry() {
        let mut a = spec.build();
        let mut b = spec.build();
        let out_a = replay_job(&jobs[0], a.as_mut(), &ReplayConfig::default());
        let out_b = replay_job(&jobs[0], b.as_mut(), &ReplayConfig::default());
        assert_eq!(
            out_a.flagged_at, out_b.flagged_at,
            "{} is nondeterministic",
            spec.name
        );
    }
}

#[test]
fn revelation_rule_blocks_post_threshold_flags() {
    // Even a flag-everything predictor cannot flag after τ: every flag's
    // checkpoint time must be strictly below the threshold.
    for job in small_suite(TraceStyle::Google, 3, 0xC2) {
        let out = replay_job(&job, &mut FlagAll, &ReplayConfig::default());
        for (task, flag) in out.flagged_at.iter().enumerate() {
            if let Some(k) = flag {
                assert!(
                    job.checkpoint_times()[*k] < out.threshold,
                    "task {task} flagged at t >= tau"
                );
            }
        }
    }
}

#[test]
fn flag_everything_has_perfect_recall_on_predictable_stragglers() {
    // Under the revelation rule, FlagAll still catches every straggler
    // that is running at some prediction checkpoint — which is all of them
    // whenever a checkpoint lands between warmup and τ.
    for job in small_suite(TraceStyle::Google, 3, 0xC3) {
        let out = replay_job(&job, &mut FlagAll, &ReplayConfig::default());
        let warmup_time = job.checkpoint_times()[out.warmup_checkpoint];
        if warmup_time < out.threshold {
            assert_eq!(
                out.confusion.false_negatives, 0,
                "FlagAll missed a straggler that was predictable"
            );
        }
    }
}

#[test]
fn csv_roundtrip_preserves_replay_outcomes() {
    let jobs = small_suite(TraceStyle::Google, 2, 0xC4);
    let path = std::env::temp_dir().join("nurd_test_roundtrip.csv");
    nurd::data::write_jobs_csv(&path, &jobs).unwrap();
    let reloaded = nurd::data::read_jobs_csv(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(jobs.len(), reloaded.len());
    for (a, b) in jobs.iter().zip(&reloaded) {
        let mut pa = nurd::core::NurdPredictor::new(nurd::core::NurdConfig::default());
        let mut pb = nurd::core::NurdPredictor::new(nurd::core::NurdConfig::default());
        let out_a = replay_job(a, &mut pa, &ReplayConfig::default());
        let out_b = replay_job(b, &mut pb, &ReplayConfig::default());
        assert_eq!(out_a.flagged_at, out_b.flagged_at);
    }
}

#[test]
fn scheduler_never_beats_perfect_information_bound() {
    // Mitigated JCT can never undercut the baseline JCT of a job whose
    // stragglers were replaced by instantaneous tasks — a loose lower
    // bound: the kill time of the earliest flag.
    for job in small_suite(TraceStyle::Google, 2, 0xC5) {
        let mut p = nurd::core::NurdPredictor::new(nurd::core::NurdConfig::default());
        let out = replay_job(&job, &mut p, &ReplayConfig::default());
        let jct = simulate_jct(&job, &out, &SchedulerConfig::default());
        assert!(jct.mitigated > 0.0);
        assert!(jct.baseline >= job.max_latency() - 1e-9);
        // Non-straggler latencies bound the mitigated makespan from below:
        // unflagged tasks still run to completion.
        let unflagged_max = job
            .tasks()
            .iter()
            .filter(|t| out.flagged_at[t.id()].is_none())
            .map(|t| t.latency())
            .fold(0.0, f64::max);
        assert!(jct.mitigated >= unflagged_max - 1e-9);
    }
}

#[test]
fn oracle_wrangler_outperforms_oracle_free_gbtr() {
    // Wrangler gets labels; GBTR does not. Averaged over jobs, Wrangler's
    // F1 must dominate.
    let jobs = small_suite(TraceStyle::Google, 6, 0xC6);
    let registry = nurd::baselines::registry();
    let f1 = |name: &str| -> f64 {
        let spec = registry.iter().find(|m| m.name == name).unwrap();
        jobs.iter()
            .map(|job| {
                let mut p = spec.build();
                replay_job(job, p.as_mut(), &ReplayConfig::default())
                    .confusion
                    .f1()
            })
            .sum::<f64>()
            / jobs.len() as f64
    };
    assert!(f1("Wrangler") > f1("GBTR"));
}

#[test]
fn alibaba_features_are_weaker_than_google() {
    // The same method does worse (or no better) with 4 features than 15 —
    // the paper's cross-trace compression effect, averaged over suites.
    let google = small_suite(TraceStyle::Google, 6, 0xC7);
    let alibaba = small_suite(TraceStyle::Alibaba, 6, 0xC7);
    let eval = |jobs: &[nurd::data::JobTrace]| -> f64 {
        jobs.iter()
            .map(|job| {
                let mut p = nurd::core::NurdPredictor::new(nurd::core::NurdConfig::default());
                replay_job(job, &mut p, &ReplayConfig::default())
                    .confusion
                    .f1()
            })
            .sum::<f64>()
            / jobs.len() as f64
    };
    let g = eval(&google);
    let a = eval(&alibaba);
    assert!(
        g > a - 0.05,
        "google F1 {g:.3} should not trail alibaba {a:.3} materially"
    );
}

#[test]
fn job_context_threshold_matches_replay_threshold() {
    struct Capture {
        seen: f64,
    }
    impl OnlinePredictor for Capture {
        fn name(&self) -> &str {
            "CAP"
        }
        fn begin_job(&mut self, ctx: &JobContext<'_>) {
            self.seen = ctx.threshold;
        }
        fn predict(&mut self, _c: &Checkpoint<'_>) -> Vec<usize> {
            Vec::new()
        }
    }
    let job = &small_suite(TraceStyle::Google, 1, 0xC8)[0];
    let mut p = Capture { seen: f64::NAN };
    let out = replay_job(job, &mut p, &ReplayConfig::default());
    assert_eq!(p.seen, out.threshold);
    assert_eq!(out.threshold, job.straggler_threshold(0.9));
}
