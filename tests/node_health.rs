//! Acceptance properties for the node-health subsystem (PR 8):
//!
//! 1. **Disabled ⇒ invisible** — with `node_model: None` the whole loop
//!    (traces, engine outcomes, action logs) is bit-identical at shard
//!    counts {1, 2, 8}, and attaching a [`HealthAggregator`] observer
//!    changes *nothing* in the run's outputs (the bit-invisibility
//!    contract of [`nurd::serve::HealthObserver`]).
//! 2. **Sick node found, and worth finding** — on a seeded sick-node
//!    fleet the aggregator convicts exactly the planted machine, and the
//!    node-aware policy beats every node-blind threshold policy at equal
//!    or lower wasted-work fraction on mean JCT.
//! 3. **Recovery equivalence** — an aggregator carried through
//!    crash → `recover_with_observer` ends with exactly the state of one
//!    that observed the same stream on a never-crashed service.

use std::collections::BTreeMap;
use std::sync::Arc;

use nurd::health::{HealthAggregator, HealthConfig, NodeVerdict};
use nurd::mitigate::{
    run_fleet, run_node_fleet, threshold_mitigator, FleetConfig, NodeFleetConfig,
};
use nurd::serve::{
    EngineConfig, EngineService, FsyncPolicy, HealthObserver, PersistenceConfig, ServiceConfig,
};
use nurd::sim::MitigationSimConfig;
use nurd::trace::{NodeModel, NodeModelConfig, SuiteConfig, TraceStyle};

fn base_suite() -> SuiteConfig {
    SuiteConfig::new(TraceStyle::Google)
        .with_jobs(6)
        .with_task_range(60, 90)
        .with_checkpoints(8)
        .with_seed(0xBAD5EED)
}

fn node_model() -> NodeModelConfig {
    NodeModelConfig::new(12).with_unhealthy(1, 2)
}

fn node_suite() -> SuiteConfig {
    base_suite().with_node_model(node_model())
}

fn fleet(shards: usize, node_resample: bool) -> FleetConfig {
    FleetConfig {
        shards,
        sim: MitigationSimConfig {
            node_resample,
            ..MitigationSimConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[test]
fn disabled_node_model_is_bit_identical_across_shards_and_observers() {
    let jobs = nurd::trace::generate_suite(&base_suite());
    // With the node model disabled no job carries a placement.
    assert!(jobs.iter().all(|j| j.node_placement().is_none()));

    let reference = run_fleet(
        &jobs,
        Some(threshold_mitigator(1.0, Some(8))),
        &fleet(1, false),
    );
    for shards in [2, 8] {
        let run = run_fleet(
            &jobs,
            Some(threshold_mitigator(1.0, Some(8))),
            &fleet(shards, false),
        );
        assert_eq!(
            run.action_log, reference.action_log,
            "action log diverged at {shards} shards"
        );
        assert_eq!(
            run.reports, reference.reports,
            "reports diverged at {shards} shards"
        );
        assert_eq!(run.outcomes, reference.outcomes);
    }

    // Attaching the aggregator observer is bit-invisible to every output
    // — and on a placement-less fleet it also learns nothing.
    let node_run = run_node_fleet(
        &jobs,
        &NodeFleetConfig {
            fleet: fleet(4, false),
            ..NodeFleetConfig::default()
        },
    );
    let unobserved = run_fleet(&jobs, None, &fleet(4, false));
    assert_eq!(node_run.observed.reports, unobserved.reports);
    assert_eq!(node_run.observed.outcomes, unobserved.outcomes);
    assert!(node_run.verdicts.is_empty(), "no placement ⇒ no verdicts");
}

#[test]
fn node_fleet_action_log_is_bit_identical_across_shards() {
    let jobs = nurd::trace::generate_suite(&node_suite());
    let run_at = |shards: usize| {
        run_node_fleet(
            &jobs,
            &NodeFleetConfig {
                fleet: fleet(shards, true),
                ..NodeFleetConfig::default()
            },
        )
    };
    let reference = run_at(1);
    for shards in [2, 8] {
        let run = run_at(shards);
        assert_eq!(run.verdicts, reference.verdicts);
        assert_eq!(run.mitigated.action_log, reference.mitigated.action_log);
        assert_eq!(run.mitigated.reports, reference.mitigated.reports);
    }
}

#[test]
fn aggregator_convicts_the_planted_sick_node_and_the_verdict_pays() {
    let suite = node_suite();
    let jobs = nurd::trace::generate_suite(&suite);
    let run = run_node_fleet(
        &jobs,
        &NodeFleetConfig {
            fleet: fleet(4, true),
            // Match the sweep family's plain-threshold knob so the
            // node axis is the only difference.
            score_threshold: 1.2,
            watch_threshold: 1.2,
            ..NodeFleetConfig::default()
        },
    );

    // The aggregator's quarantine list is exactly the planted sick node.
    let model = NodeModel::build(&node_model(), suite.straggler_severity);
    let quarantined: Vec<u32> = run
        .verdicts
        .iter()
        .filter(|(_, v)| **v == NodeVerdict::Quarantine)
        .map(|(n, _)| *n)
        .collect();
    assert_eq!(quarantined, model.sick_nodes(), "convicted ≠ planted");

    // And the conviction pays: against every node-blind threshold policy
    // whose wasted-work fraction is equal or lower, the node-aware run
    // has the strictly larger mean-JCT reduction.
    let aware = &run.mitigated.summary;
    assert!(aware.mean_jct_reduction_percent > 0.0);
    let mut best_blind = f64::MIN;
    for budget in [Some(8), Some(16), None] {
        for threshold in [0.4, 0.6, 0.8, 1.0, 1.2] {
            let blind = run_fleet(
                &jobs,
                Some(threshold_mitigator(threshold, budget)),
                &fleet(4, true),
            );
            if blind.summary.wasted_fraction <= aware.wasted_fraction {
                best_blind = best_blind.max(blind.summary.mean_jct_reduction_percent);
            }
        }
    }
    assert!(
        aware.mean_jct_reduction_percent > best_blind,
        "node-aware {:.2}% did not beat best equal-or-lower-waste blind {:.2}%",
        aware.mean_jct_reduction_percent,
        best_blind,
    );
}

#[test]
fn quarantine_actions_flow_end_to_end() {
    // Policy emits → engine commits (log + counter) → simulator restarts
    // the clock: the full MitigationAction::Quarantine path.
    let suite = node_suite();
    let jobs = nurd::trace::generate_suite(&suite);
    let model = NodeModel::build(&node_model(), suite.straggler_severity);
    let sick = model.sick_nodes();

    let run = run_node_fleet(
        &jobs,
        &NodeFleetConfig {
            fleet: fleet(4, true),
            ..NodeFleetConfig::default()
        },
    );
    let quarantines: Vec<_> = run
        .mitigated
        .action_log
        .iter()
        .filter(|r| r.action == nurd::data::MitigationAction::Quarantine)
        .collect();
    assert!(!quarantines.is_empty(), "no quarantines committed");

    // Every committed quarantine targets a task placed on the sick node.
    for record in &quarantines {
        let job = jobs.iter().find(|j| j.job_id() == record.job).unwrap();
        let nodes = job.node_placement().unwrap();
        assert!(
            sick.contains(&nodes[record.task]),
            "job {} task {} quarantined on healthy node {}",
            record.job,
            record.task,
            nodes[record.task],
        );
    }

    // Simulator restarts the clock: the quarantined task's completion is
    // strictly after the action time, via mitigation, and its kill is
    // priced as wasted work.
    for (report, outcome) in run.mitigated.reports.iter().zip(&run.mitigated.outcomes) {
        let mut expected_waste = 0.0;
        for record in &report.actions {
            if record.action != nurd::data::MitigationAction::Quarantine {
                continue;
            }
            let completion = outcome.completions[record.task];
            assert!(completion.via_mitigation);
            assert!(completion.time > record.time);
            expected_waste += record.time;
        }
        assert!(
            outcome.wasted_work >= expected_waste - 1e-9,
            "job {}: waste {} below the killed work {}",
            report.job,
            outcome.wasted_work,
            expected_waste,
        );
    }
}

/// Plays `events` into a fresh service with `aggregator` attached and
/// closes it; the aggregator is left holding the run's observations.
fn observe_stream(
    events: Vec<nurd::data::TaskEvent>,
    aggregator: &Arc<HealthAggregator>,
    shards: usize,
) {
    let service = EngineService::start(
        EngineConfig {
            shards,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
        nurd::mitigate::nurd_predictor_factory(),
    );
    assert!(service.attach_observer(Arc::clone(aggregator) as Arc<dyn HealthObserver>));
    service.push_all(events);
    let _ = service.close();
}

#[test]
fn recovered_aggregator_decides_like_never_crashed() {
    let jobs = nurd::trace::generate_suite(&node_suite());
    let events: Vec<_> = nurd::trace::staggered_fleet_events(&jobs, 0.9, 120.0, 0xF1EE7);

    // Control: the whole stream on a never-crashed service.
    let control = Arc::new(HealthAggregator::new(HealthConfig::default()));
    observe_stream(events.clone(), &control, 4);

    // Crash path: play a prefix, checkpoint (captures the observer blob),
    // play more, then "crash" (drop without close — the WAL tail
    // survives, the in-memory aggregator does not).
    let dir = std::env::temp_dir().join(format!("nurd-health-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut persistence = PersistenceConfig::new(&dir);
    persistence.fsync = FsyncPolicy::Never;
    let split = events.len() * 2 / 3;
    {
        let service = EngineService::start_persistent(
            EngineConfig {
                shards: 4,
                ..EngineConfig::default()
            },
            ServiceConfig::default(),
            persistence.clone(),
            nurd::mitigate::nurd_predictor_factory(),
        )
        .unwrap();
        let before_crash = Arc::new(HealthAggregator::new(HealthConfig::default()));
        assert!(service.attach_observer(before_crash as Arc<dyn HealthObserver>));
        service.push_all(events[..split / 2].to_vec());
        service.quiesce();
        service.checkpoint().unwrap();
        service.push_all(events[split / 2..split].to_vec());
        // Crash: drop. The Drop impl drains and flushes the WAL but the
        // aggregator's in-memory state dies with the process image.
    }

    // Recover with a *fresh* aggregator: the snapshot blob restores the
    // pre-checkpoint observations, the WAL suffix is re-observed live.
    let recovered = Arc::new(HealthAggregator::new(HealthConfig::default()));
    let (service, report) = EngineService::recover_with_observer(
        persistence,
        EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
        nurd::mitigate::nurd_predictor_factory(),
        None,
        Arc::clone(&recovered) as Arc<dyn HealthObserver>,
    )
    .unwrap();
    assert!(report.wal_events_replayed > 0, "crash lost the whole tail");
    service.push_all(events[split..].to_vec());
    let _ = service.close();

    assert_eq!(recovered.rates(), control.rates(), "recovery diverged");
    let expected: BTreeMap<u32, NodeVerdict> = control.verdicts();
    assert_eq!(recovered.verdicts(), expected);

    let _ = std::fs::remove_dir_all(&dir);
}
