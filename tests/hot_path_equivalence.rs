//! Differential acceptance for the flattened scoring hot path: the
//! structure-of-arrays batch kernels ([`nurd::ml::FlatForest`], pooled
//! barrier scratch in the serving engine) must be **bit-identical** to
//! the pointer-tree reference on every observable — per-task score
//! breakdowns, sequential replay outcomes, and whole engine reports —
//! across refit policies, shard counts, and the barrier edge cases
//! (single-task jobs, all-flagged barriers, truncated streams).

use nurd::core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd::data::{Checkpoint, FinishedTask, JobSpec, OnlinePredictor, RunningTask, TaskEvent};
use nurd::runtime::ThreadPool;
use nurd::serve::{Engine, EngineConfig, EngineReport, PredictorFactory};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

const QUANTILE: f64 = 0.9;
const WARMUP: f64 = 0.04;

fn suite(style: TraceStyle, jobs: usize, seed: u64) -> Vec<nurd::data::JobTrace> {
    let cfg = SuiteConfig::new(style)
        .with_jobs(jobs)
        .with_task_range(50, 70)
        .with_checkpoints(8)
        .with_seed(seed);
    nurd::trace::generate_suite(&cfg)
}

fn config(flat: bool, policy: RefitPolicy) -> NurdConfig {
    NurdConfig::default()
        .with_refit_policy(policy)
        .with_flat_scoring(flat)
}

fn policies() -> [RefitPolicy; 2] {
    [
        RefitPolicy::AlwaysCold,
        RefitPolicy::Warm(WarmRefitConfig::default()),
    ]
}

fn nurd_factory(flat: bool, policy: RefitPolicy) -> PredictorFactory {
    Box::new(move |_spec: &JobSpec| Box::new(NurdPredictor::new(config(flat, policy.clone()))))
}

fn run_engine(
    jobs: &[nurd::data::JobTrace],
    events: Vec<TaskEvent>,
    shards: usize,
    pool: &ThreadPool,
    factory: PredictorFactory,
) -> EngineReport {
    let engine = Engine::new(
        EngineConfig {
            shards,
            warmup_fraction: WARMUP,
            ..EngineConfig::default()
        },
        factory,
    );
    for job in jobs {
        engine.admit(JobSpec::of_trace(job, QUANTILE));
    }
    engine.push_all_sync(events);
    engine.finish(pool)
}

/// Sequential replay: the flat path and the pointer path produce the
/// same `ReplayOutcome` bit for bit, on both trace styles and under both
/// refit families — and the comparison is not vacuous (tasks do flag).
#[test]
fn replay_outcomes_identical_under_flat_and_pointer_scoring() {
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    let mut total_flags = 0usize;
    for style in [TraceStyle::Google, TraceStyle::Alibaba] {
        for job in suite(style, 3, 0xF1A7) {
            for policy in policies() {
                let mut flat = NurdPredictor::new(config(true, policy.clone()));
                let mut pointer = NurdPredictor::new(config(false, policy.clone()));
                let out_flat = replay_job(&job, &mut flat, &replay_cfg);
                let out_pointer = replay_job(&job, &mut pointer, &replay_cfg);
                assert_eq!(
                    out_flat,
                    out_pointer,
                    "flat and pointer scoring diverged on job {} ({style:?}, {policy:?})",
                    job.job_id()
                );
                total_flags += out_flat.flagged_at.iter().flatten().count();
            }
        }
    }
    assert!(
        total_flags > 0,
        "no task ever flagged — comparison is vacuous"
    );
}

/// The full per-task score breakdown — raw prediction, propensity,
/// weight, adjusted latency — is bit-identical between the two paths at
/// every checkpoint, including across warm-start refits of the same
/// predictor instance.
#[test]
fn score_breakdowns_identical_at_every_checkpoint() {
    // Finished tasks accrue checkpoint by checkpoint so each call refits
    // on new data; running tasks include a typical and an alien point.
    let finished: Vec<(Vec<f64>, f64)> = (0..60)
        .map(|i| {
            let x = i as f64 / 60.0;
            let y = (i as f64 * 0.37).sin();
            (vec![x, 1.0 - x, y], 20.0 + 30.0 * x + 5.0 * y)
        })
        .collect();
    let running = [
        vec![0.5, 0.5, 0.1],
        vec![0.9, 0.1, -0.4],
        vec![7.0, -5.0, 3.0],
    ];
    for policy in policies() {
        let mut flat = NurdPredictor::new(config(true, policy.clone()));
        let mut pointer = NurdPredictor::new(config(false, policy.clone()));
        for (ordinal, take) in [10usize, 25, 40, 60].into_iter().enumerate() {
            let checkpoint = Checkpoint {
                ordinal,
                time: 10.0 * (ordinal + 1) as f64,
                finished: finished[..take]
                    .iter()
                    .enumerate()
                    .map(|(id, (f, l))| FinishedTask {
                        id,
                        features: f,
                        latency: *l,
                    })
                    .collect(),
                running: running
                    .iter()
                    .enumerate()
                    .map(|(i, f)| RunningTask {
                        id: finished.len() + i,
                        features: f,
                    })
                    .collect(),
            };
            let a = flat.score_running(&checkpoint);
            let b = pointer.score_running(&checkpoint);
            assert_eq!(a.len(), running.len());
            assert_eq!(
                a, b,
                "score breakdowns diverged at checkpoint {ordinal} under {policy:?}"
            );
        }
    }
}

/// End to end through the concurrent engine: with flat scoring on, shard
/// counts {1, 2, 8} all produce the identical report, that report equals
/// the pointer-path engine's, and every job's outcome equals sequential
/// replay.
#[test]
fn engine_reports_flat_equals_pointer_at_all_shard_counts() {
    let jobs = suite(TraceStyle::Google, 3, 0xF1A8);
    let pool = ThreadPool::new(2);
    let (_, events) = nurd::trace::fleet_events(&jobs, QUANTILE);
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    for policy in policies() {
        let pointer = run_engine(
            &jobs,
            events.clone(),
            1,
            &pool,
            nurd_factory(false, policy.clone()),
        );
        for shards in [1usize, 2, 8] {
            let flat = run_engine(
                &jobs,
                events.clone(),
                shards,
                &pool,
                nurd_factory(true, policy.clone()),
            );
            assert_eq!(
                flat, pointer,
                "flat engine at {shards} shards diverged from the pointer engine ({policy:?})"
            );
        }
        for job in &jobs {
            let mut reference = NurdPredictor::new(config(true, policy.clone()));
            let expected = replay_job(job, &mut reference, &replay_cfg);
            let got = pointer.job(job.job_id()).expect("job reported");
            assert_eq!(got.outcome, expected, "engine diverged from replay");
        }
    }
}

/// Lane-width sweep end to end: every supported lane width (1, 2, 4, 8 —
/// including widths that leave remainder rows on these 50–70-task jobs)
/// produces an engine report bit-identical to the pointer-scoring
/// engine's, under both refit families.
#[test]
fn lane_width_sweep_matches_pointer_engine() {
    let jobs = suite(TraceStyle::Google, 3, 0xF1AC);
    let pool = ThreadPool::new(2);
    let (_, events) = nurd::trace::fleet_events(&jobs, QUANTILE);
    for policy in policies() {
        let pointer = run_engine(
            &jobs,
            events.clone(),
            1,
            &pool,
            nurd_factory(false, policy.clone()),
        );
        for lanes in nurd::ml::SUPPORTED_LANES {
            let lane_policy = policy.clone();
            let factory: PredictorFactory = Box::new(move |_spec: &JobSpec| {
                Box::new(NurdPredictor::new(
                    config(true, lane_policy.clone()).with_scoring_lanes(lanes),
                ))
            });
            let flat = run_engine(&jobs, events.clone(), 2, &pool, factory);
            assert_eq!(
                flat, pointer,
                "lane width {lanes} diverged from the pointer engine ({policy:?})"
            );
        }
    }
}

/// Pool-parallel barrier scoring: predictors granted within-job
/// parallelism (`n_threads` ∈ {2, 4}, `parallel_score_min` forced to 1 so
/// every barrier takes the pooled path) produce engine reports
/// bit-identical to the sequential pointer engine at shard counts
/// {1, 2, 8} — and the pooled lane kernels demonstrably ran.
#[test]
fn pool_parallel_scoring_matches_pointer_engine_at_all_shard_counts() {
    let jobs = suite(TraceStyle::Google, 3, 0xF1AD);
    let pool = ThreadPool::new(2);
    let (_, events) = nurd::trace::fleet_events(&jobs, QUANTILE);
    let parallel_config = |threads: usize| {
        let mut cfg = config(true, RefitPolicy::AlwaysCold).with_parallel_score_min(1);
        cfg.gbt.tree.n_threads = threads;
        cfg
    };
    let pointer = run_engine(
        &jobs,
        events.clone(),
        1,
        &pool,
        nurd_factory(false, RefitPolicy::AlwaysCold),
    );
    for threads in [2usize, 4] {
        for shards in [1usize, 2, 8] {
            let factory: PredictorFactory = Box::new(move |_spec: &JobSpec| {
                Box::new(NurdPredictor::new(parallel_config(threads)))
            });
            let parallel = run_engine(&jobs, events.clone(), shards, &pool, factory);
            assert_eq!(
                parallel, pointer,
                "pooled scoring at {threads} threads / {shards} shards \
                 diverged from the sequential pointer engine"
            );
        }
    }

    // Not vacuous: a sequential replay under the same grant drives the
    // lane kernels (observable via the predictor's chunk counter) and
    // still matches the ungranted predictor bit for bit.
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    let mut granted = NurdPredictor::new(parallel_config(2));
    let mut plain = NurdPredictor::new(config(true, RefitPolicy::AlwaysCold));
    for job in &jobs {
        let a = replay_job(job, &mut granted, &replay_cfg);
        let b = replay_job(job, &mut plain, &replay_cfg);
        assert_eq!(a, b, "granted replay diverged on job {}", job.job_id());
    }
    assert!(
        granted.lane_chunks() > 0,
        "lane kernels never ran under the parallelism grant — test is vacuous"
    );
}

/// Degenerate barrier shapes — a single-task job (warmup quorum of one,
/// checkpoints where the running view is empty or a singleton) — take
/// the same pooled-scratch barrier path and still match replay exactly.
#[test]
fn single_task_jobs_match_replay() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(3)
        .with_task_range(1, 3)
        .with_checkpoints(6)
        .with_seed(0xF1A9);
    let jobs = nurd::trace::generate_suite(&cfg);
    assert!(jobs.iter().any(|j| j.task_count() == 1));
    let pool = ThreadPool::new(2);
    let (_, events) = nurd::trace::fleet_events(&jobs, QUANTILE);
    let report = run_engine(
        &jobs,
        events,
        2,
        &pool,
        nurd_factory(true, RefitPolicy::AlwaysCold),
    );
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    for job in &jobs {
        let mut reference = NurdPredictor::new(config(true, RefitPolicy::AlwaysCold));
        let expected = replay_job(job, &mut reference, &replay_cfg);
        let got = report.job(job.job_id()).expect("job reported");
        assert_eq!(
            got.outcome,
            expected,
            "single-task-range job {} diverged from replay",
            job.job_id()
        );
    }
}

/// Flags everything it sees: after the first scoring barrier every task
/// is flagged, so every later barrier assembles *empty* finished/running
/// views from the recycled scratch — the all-flagged edge case.
struct FlagAll;
impl OnlinePredictor for FlagAll {
    fn name(&self) -> &str {
        "ALL"
    }
    fn predict(&mut self, c: &Checkpoint<'_>) -> Vec<usize> {
        c.running.iter().map(|r| r.id).collect()
    }
}

#[test]
fn all_flagged_barriers_match_replay() {
    let jobs = suite(TraceStyle::Google, 2, 0xF1AA);
    let pool = ThreadPool::new(2);
    let (_, events) = nurd::trace::fleet_events(&jobs, QUANTILE);
    let factory: PredictorFactory = Box::new(|_spec: &JobSpec| Box::new(FlagAll));
    let report = run_engine(&jobs, events, 2, &pool, factory);
    let replay_cfg = ReplayConfig {
        quantile: QUANTILE,
        warmup_fraction: WARMUP,
    };
    let mut flagged = 0usize;
    for job in &jobs {
        let expected = replay_job(job, &mut FlagAll, &replay_cfg);
        let got = report.job(job.job_id()).expect("job reported");
        assert_eq!(got.outcome, expected, "FlagAll engine diverged from replay");
        flagged += expected.flagged_at.iter().flatten().count();
    }
    assert!(flagged > 0, "nothing flagged — edge case not exercised");
}

/// Finalizing with the stream cut mid-job (no `JobEnd`, barriers missing)
/// is deterministic and prefix-consistent: two identical truncated runs
/// agree bit for bit, and every flag the truncated run commits is
/// exactly the full run's flag for that task.
#[test]
fn truncated_stream_finalize_is_deterministic_and_prefix_consistent() {
    let jobs = suite(TraceStyle::Google, 2, 0xF1AB);
    let pool = ThreadPool::new(2);
    let (_, events) = nurd::trace::fleet_events(&jobs, QUANTILE);
    let cut = events.len() * 2 / 3;
    let truncated: Vec<TaskEvent> = events[..cut].to_vec();

    let full = run_engine(
        &jobs,
        events,
        2,
        &pool,
        nurd_factory(true, RefitPolicy::AlwaysCold),
    );
    let run = |shards: usize| {
        run_engine(
            &jobs,
            truncated.clone(),
            shards,
            &pool,
            nurd_factory(true, RefitPolicy::AlwaysCold),
        )
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a, b, "truncated finalize depends on shard count");

    for job in &jobs {
        let full_flags = &full.job(job.job_id()).expect("full run").outcome.flagged_at;
        let cut_flags = &a
            .job(job.job_id())
            .expect("truncated run")
            .outcome
            .flagged_at;
        for (task, flag) in cut_flags.iter().enumerate() {
            if let Some(ordinal) = flag {
                assert_eq!(
                    Some(ordinal),
                    full_flags[task].as_ref(),
                    "truncated run flagged task {task} differently from the full run"
                );
            }
        }
    }
}
