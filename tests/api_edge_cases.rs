//! Edge-case and failure-injection tests over the public API surface:
//! the library must fail loudly and predictably, never silently wrong.

use nurd::data::{DataError, JobTrace, TaskRecord};
use nurd::ml::{
    GbtConfig, GradientBoosting, KMeans, KMeansConfig, LinearSvm, LogisticConfig,
    LogisticRegression, MlError, NearestNeighbors, SquaredLoss, SvmConfig,
};
use nurd::outlier::{contamination_threshold, IsolationForest, OutlierDetector};
use nurd::survival::{CoxConfig, CoxPh, Grabit, GrabitConfig, Tobit, TobitConfig};

#[test]
fn degenerate_training_sets_error_not_panic() {
    // Empty everything.
    assert!(matches!(
        GradientBoosting::fit(&[], &[], SquaredLoss, &GbtConfig::default()),
        Err(MlError::EmptyTrainingSet)
    ));
    assert!(matches!(
        LogisticRegression::fit(&[], &[], &LogisticConfig::default()),
        Err(MlError::EmptyTrainingSet)
    ));
    assert!(matches!(
        LinearSvm::fit(&[], &[], &SvmConfig::default()),
        Err(MlError::EmptyTrainingSet)
    ));
    assert!(matches!(
        KMeans::fit(&[], &KMeansConfig::default()),
        Err(MlError::EmptyTrainingSet)
    ));
    assert!(NearestNeighbors::new(vec![]).is_err());
    assert!(Tobit::fit(&[], &[], &[], &TobitConfig::default()).is_err());
    assert!(Grabit::fit(&[], &[], &[], &GrabitConfig::default()).is_err());
    assert!(CoxPh::fit(&[], &[], &[], &CoxConfig::default()).is_err());
}

#[test]
fn single_sample_models_behave() {
    // One sample is enough for fit-or-clean-error, never a panic.
    let x = vec![vec![1.0, 2.0]];
    let gbt = GradientBoosting::fit(&x, &[5.0], SquaredLoss, &GbtConfig::default()).unwrap();
    assert!((gbt.predict(&[1.0, 2.0]) - 5.0).abs() < 1e-9);
    let km = KMeans::fit(&x, &KMeansConfig::default()).unwrap();
    assert_eq!(km.centroids().len(), 1);
    let det = IsolationForest::default();
    let scores = det.score_all(&x).unwrap();
    assert_eq!(scores.len(), 1);
}

#[test]
fn constant_features_are_survivable_everywhere() {
    let x: Vec<Vec<f64>> = (0..20).map(|_| vec![3.0, 3.0, 3.0]).collect();
    let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
    let labels: Vec<f64> = (0..20).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
    let gbt = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
    assert!((gbt.predict(&[3.0, 3.0, 3.0]) - 9.5).abs() < 1e-6);
    let lr = LogisticRegression::fit(&x, &labels, &LogisticConfig::default()).unwrap();
    assert!((lr.predict_proba(&[3.0, 3.0, 3.0]) - 0.5).abs() < 0.01);
}

#[test]
fn nan_free_outputs_under_extreme_scales() {
    // Features spanning 12 orders of magnitude must not produce NaN.
    let x: Vec<Vec<f64>> = (0..30)
        .map(|i| vec![1e-6 * (i + 1) as f64, 1e6 * (i + 1) as f64])
        .collect();
    let y: Vec<f64> = (0..30).map(|i| (i * i) as f64).collect();
    let gbt = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
    for row in &x {
        assert!(gbt.predict(row).is_finite());
    }
    let observed = vec![true; 30];
    let tobit = Tobit::fit(&x, &y, &observed, &TobitConfig::default()).unwrap();
    for row in &x {
        assert!(tobit.predict(row).is_finite());
    }
}

#[test]
fn trace_validation_rejects_malformed_jobs() {
    // Zero tasks.
    assert!(matches!(
        JobTrace::new(1, vec!["f".into()], vec![1.0], vec![]),
        Err(DataError::Invalid(_))
    ));
    // Checkpoint at time zero.
    let t = TaskRecord::new(0, 1.0, vec![vec![0.0]]);
    assert!(JobTrace::new(1, vec!["f".into()], vec![0.0], vec![t]).is_err());
    // NaN checkpoint.
    let t = TaskRecord::new(0, 1.0, vec![vec![0.0]]);
    assert!(JobTrace::new(1, vec!["f".into()], vec![f64::NAN], vec![t]).is_err());
}

#[test]
fn csv_reader_survives_hostile_input() {
    for garbage in [
        &b"\xff\xfe invalid utf8 later: \xc3\x28"[..],
        b"#job,notanumber\n",
        b"#features,a,b\n0,1,0,2,3\n",
        b"#job,1\n#features,a\n#checkpoints,abc\n",
        b"#job,1\n#features,f\n#checkpoints,1\n0,nan,0,0.5\n",
        b"#job,1\n#features,f\n#checkpoints,1\n0,1.0,0,inf\n",
        b"#job,1\n#features,f\n#checkpoints,1\n0,-3.0,0,0.5\n",
    ] {
        // Must error, never panic.
        assert!(nurd::data::read_job_csv(garbage).is_err());
    }
}

#[test]
fn contamination_threshold_extremes() {
    let scores = vec![1.0, 2.0, 3.0, 4.0, 5.0];
    // Tiny contamination → threshold at the top of the range.
    assert!(contamination_threshold(&scores, 0.01) >= 4.0);
    // Huge contamination → threshold near the bottom.
    assert!(contamination_threshold(&scores, 0.99) <= 2.0);
}

#[test]
fn replay_handles_trivial_jobs() {
    // A 2-task job with 1 checkpoint must replay without panicking for
    // every registry method.
    let tasks = vec![
        TaskRecord::new(0, 1.0, vec![vec![0.1, 0.2]]),
        TaskRecord::new(1, 5.0, vec![vec![0.9, 0.8]]),
    ];
    let job = JobTrace::new(9, vec!["a".into(), "b".into()], vec![10.0], tasks).unwrap();
    for spec in nurd::baselines::registry() {
        let mut p = spec.build();
        let out = nurd::sim::replay_job(&job, p.as_mut(), &nurd::sim::ReplayConfig::default());
        assert_eq!(out.confusion.total(), 2, "{}", spec.name);
    }
}

#[test]
fn quantile_thresholds_cover_the_full_range() {
    let tasks: Vec<TaskRecord> = (0..50)
        .map(|i| TaskRecord::new(i, (i + 1) as f64, vec![vec![i as f64]]))
        .collect();
    let job = JobTrace::new(3, vec!["f".into()], vec![100.0], tasks).unwrap();
    for q in [0.0, 0.25, 0.5, 0.7, 0.9, 0.95, 1.0] {
        let t = job.straggler_threshold(q);
        assert!((1.0..=50.0).contains(&t), "q={q} → {t}");
    }
    // Monotone in q.
    assert!(job.straggler_threshold(0.9) > job.straggler_threshold(0.5));
}
