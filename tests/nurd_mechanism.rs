//! Integration tests for NURD's mechanism on generated traces: the claims
//! of Algorithm 1, checked end to end rather than on fixtures.

use nurd::core::{calibration_delta, centroid_ratio, NurdConfig, NurdPredictor};
use nurd::data::{Checkpoint, FinishedTask, JobContext, OnlinePredictor, RunningTask};
use nurd::sim::{replay_job, ReplayConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn checkpoint_views(job: &nurd::data::JobTrace, k: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let t = job.checkpoint_times()[k];
    let mut fin = Vec::new();
    let mut run = Vec::new();
    for task in job.tasks() {
        if task.latency() <= t {
            fin.push(task.snapshot(k).to_vec());
        } else {
            run.push(task.snapshot(k).to_vec());
        }
    }
    (fin, run)
}

#[test]
fn rho_and_delta_are_sane_across_both_families() {
    // ρ must be positive and finite at warmup on every healthy job, and the
    // resulting δ must stay inside Equation 3's range. (The *directional*
    // family claim — long-tailed jobs drawing systematically larger δ — is
    // weak on this substrate and is reported, not asserted; see
    // EXPERIMENTS.md.)
    for frac in [1.0, 0.0] {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(8)
            .with_task_range(150, 250)
            .with_checkpoints(16)
            .with_long_tail_fraction(frac)
            .with_seed(0x5EED);
        for job in nurd::trace::generate_suite(&cfg) {
            let k = job.warmup_checkpoint(0.04);
            let (fin, run) = checkpoint_views(&job, k);
            if fin.is_empty() || run.is_empty() {
                continue;
            }
            let rho = centroid_ratio(&fin, &run);
            assert!(rho > 0.0, "rho must be positive");
            let alpha = 0.2;
            let delta = calibration_delta(rho, alpha);
            assert!(delta > -alpha && delta <= 1.0 - alpha, "delta {delta}");
        }
    }
}

#[test]
fn weights_stay_in_epsilon_one_on_real_checkpoints() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(2)
        .with_task_range(120, 160)
        .with_checkpoints(12)
        .with_seed(0x111);
    for job in nurd::trace::generate_suite(&cfg) {
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        nurd.begin_job(&JobContext {
            threshold: job.straggler_threshold(0.9),
            task_count: job.task_count(),
            feature_dim: job.feature_dim(),
            oracle: &job,
        });
        for k in job.warmup_checkpoint(0.04)..job.checkpoint_count() {
            let t = job.checkpoint_times()[k];
            let mut fin = Vec::new();
            let mut run = Vec::new();
            for task in job.tasks() {
                if task.latency() <= t {
                    fin.push(FinishedTask {
                        id: task.id(),
                        features: task.snapshot(k),
                        latency: task.latency(),
                    });
                } else {
                    run.push(RunningTask {
                        id: task.id(),
                        features: task.snapshot(k),
                    });
                }
            }
            let ckpt = Checkpoint {
                ordinal: k,
                time: t,
                finished: fin,
                running: run,
            };
            for s in nurd.score_running(&ckpt) {
                assert!(s.weight >= 0.05 - 1e-12 && s.weight <= 1.0 + 1e-12);
                assert!(s.adjusted >= s.raw - 1e-9, "adjustment must not shrink");
                assert!(s.propensity.is_finite() && s.raw.is_finite());
            }
        }
    }
}

#[test]
fn nurd_beats_its_own_ablation_on_mixed_suites() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(8)
        .with_task_range(100, 180)
        .with_checkpoints(16)
        .with_seed(0x222);
    let jobs = nurd::trace::generate_suite(&cfg);
    let eval = |config: NurdConfig| -> f64 {
        jobs.iter()
            .map(|job| {
                let mut p = NurdPredictor::new(config.clone());
                replay_job(job, &mut p, &ReplayConfig::default())
                    .confusion
                    .f1()
            })
            .sum::<f64>()
            / jobs.len() as f64
    };
    let full = eval(NurdConfig::default());
    let nc = eval(NurdConfig::without_calibration());
    assert!(
        full > nc,
        "calibrated NURD {full:.3} must beat NURD-NC {nc:.3}"
    );
}

#[test]
fn stale_models_lose_to_online_updates() {
    // §4.3: refitting at every checkpoint should beat never refitting.
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(8)
        .with_task_range(100, 180)
        .with_checkpoints(16)
        .with_seed(0x333);
    let jobs = nurd::trace::generate_suite(&cfg);
    let eval = |refit_every: usize| -> f64 {
        jobs.iter()
            .map(|job| {
                let mut p = NurdPredictor::new(NurdConfig {
                    refit_every,
                    ..NurdConfig::default()
                });
                replay_job(job, &mut p, &ReplayConfig::default())
                    .confusion
                    .f1()
            })
            .sum::<f64>()
            / jobs.len() as f64
    };
    let online = eval(1);
    let frozen = eval(10_000);
    assert!(
        online >= frozen - 0.02,
        "online updates {online:.3} should not lose to frozen models {frozen:.3}"
    );
}

#[test]
fn fit_failures_are_rare_on_generated_traces() {
    let cfg = SuiteConfig::new(TraceStyle::Alibaba)
        .with_jobs(4)
        .with_task_range(100, 150)
        .with_checkpoints(16)
        .with_seed(0x444);
    for job in nurd::trace::generate_suite(&cfg) {
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        let _ = replay_job(&job, &mut nurd, &ReplayConfig::default());
        assert_eq!(
            nurd.fit_failures(),
            0,
            "model fitting failed on a healthy trace"
        );
    }
}
