//! Integration tests for the mitigation schedulers (Algorithms 2 and 3):
//! capacity, monotonicity and accounting properties under real predictions.

use nurd::core::{NurdConfig, NurdPredictor};
use nurd::data::{Checkpoint, JobContext, OnlinePredictor};
use nurd::sim::{replay_job, simulate_jct, ReplayConfig, ReplayOutcome, SchedulerConfig};
use nurd::trace::{SuiteConfig, TraceStyle};

fn job_and_outcome(seed: u64) -> (nurd::data::JobTrace, ReplayOutcome) {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(120, 160)
        .with_checkpoints(15)
        .with_seed(seed);
    let job = nurd::trace::generate_job(&cfg, 0);
    let mut p = NurdPredictor::new(NurdConfig::default());
    let outcome = replay_job(&job, &mut p, &ReplayConfig::default());
    (job, outcome)
}

/// An oracle that flags every true straggler at the first prediction
/// checkpoint — the best possible mitigation input.
struct Oracle {
    threshold: f64,
    latencies: Vec<f64>,
}
impl OnlinePredictor for Oracle {
    fn name(&self) -> &str {
        "ORACLE"
    }
    fn begin_job(&mut self, ctx: &JobContext<'_>) {
        self.threshold = ctx.threshold;
        self.latencies = ctx.oracle.latencies();
    }
    fn predict(&mut self, c: &Checkpoint<'_>) -> Vec<usize> {
        c.running
            .iter()
            .map(|r| r.id)
            .filter(|&id| self.latencies[id] >= self.threshold)
            .collect()
    }
}

#[test]
fn more_machines_never_hurt_the_baseline() {
    let (job, outcome) = job_and_outcome(1);
    let mut prev = f64::INFINITY;
    for machines in [10usize, 40, 80, 160, 400] {
        let jct = simulate_jct(
            &job,
            &outcome,
            &SchedulerConfig {
                machines: Some(machines),
                ..SchedulerConfig::default()
            },
        );
        assert!(
            jct.baseline <= prev + 1e-9,
            "baseline worsened going to {machines} machines"
        );
        prev = jct.baseline;
    }
}

#[test]
fn unlimited_equals_large_pool() {
    let (job, outcome) = job_and_outcome(2);
    let unlimited = simulate_jct(&job, &outcome, &SchedulerConfig::default());
    let large = simulate_jct(
        &job,
        &outcome,
        &SchedulerConfig {
            machines: Some(job.task_count() * 4),
            ..SchedulerConfig::default()
        },
    );
    assert!((unlimited.baseline - large.baseline).abs() < 1e-9);
    assert!((unlimited.mitigated - large.mitigated).abs() < 1e-9);
}

#[test]
fn oracle_flags_give_positive_reduction_on_long_tailed_jobs() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(4)
        .with_task_range(120, 160)
        .with_checkpoints(15)
        .with_long_tail_fraction(1.0)
        .with_seed(3);
    let mut total = 0.0;
    for job in nurd::trace::generate_suite(&cfg) {
        let mut oracle = Oracle {
            threshold: 0.0,
            latencies: vec![],
        };
        let outcome = replay_job(&job, &mut oracle, &ReplayConfig::default());
        let jct = simulate_jct(&job, &outcome, &SchedulerConfig::default());
        total += jct.reduction_percent();
    }
    assert!(
        total / 4.0 > 20.0,
        "oracle mitigation on long-tailed jobs should save >20%, got {:.1}%",
        total / 4.0
    );
}

#[test]
fn single_machine_serializes_everything() {
    let (job, outcome) = job_and_outcome(4);
    let jct = simulate_jct(
        &job,
        &outcome,
        &SchedulerConfig {
            machines: Some(1),
            ..SchedulerConfig::default()
        },
    );
    let sum: f64 = job.latencies().iter().sum();
    assert!((jct.baseline - sum).abs() < 1e-6);
    // Mitigation on one machine: killed work is partially redone, so the
    // makespan stays within [fastest possible, baseline + relaunch work].
    assert!(jct.mitigated > 0.0 && jct.mitigated.is_finite());
}

#[test]
fn reduction_is_reported_against_matching_baseline() {
    let (job, outcome) = job_and_outcome(5);
    for machines in [None, Some(50), Some(200)] {
        let jct = simulate_jct(
            &job,
            &outcome,
            &SchedulerConfig {
                machines,
                ..SchedulerConfig::default()
            },
        );
        let expected = 100.0 * (jct.baseline - jct.mitigated) / jct.baseline;
        assert!((jct.reduction_percent() - expected).abs() < 1e-9);
    }
}

#[test]
fn scheduler_is_deterministic_per_seed_and_varies_across_seeds() {
    let (job, outcome) = job_and_outcome(6);
    let a = simulate_jct(&job, &outcome, &SchedulerConfig::default());
    let b = simulate_jct(&job, &outcome, &SchedulerConfig::default());
    assert_eq!(a, b);
    let c = simulate_jct(
        &job,
        &outcome,
        &SchedulerConfig {
            seed: 999,
            ..SchedulerConfig::default()
        },
    );
    // Different resampling seed may change the mitigated time (not the
    // baseline).
    assert_eq!(a.baseline, c.baseline);
}
