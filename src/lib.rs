//! **nurd** — a from-scratch Rust reproduction of *NURD: Negative-Unlabeled
//! Learning for Online Datacenter Straggler Prediction* (MLSys 2022).
//!
//! This facade re-exports the workspace crates under stable module names so
//! downstream users can depend on a single crate:
//!
//! * [`core`] — the NURD algorithm (Algorithm 1): propensity reweighting
//!   and distribution compensation.
//! * [`baselines`] — the full Table 3 roster (the paper's 23 methods plus
//!   the `NURD-WS` warm-refit row).
//! * [`sim`] — the online replay protocol, metrics, and the mitigation
//!   schedulers of Algorithms 2 and 3.
//! * [`mitigate`] — score-driven straggler mitigation on top of
//!   [`serve`]: policies ([`mitigate::ThresholdClonePolicy`],
//!   [`mitigate::OraclePolicy`], …) turn per-barrier scores into typed
//!   actions, and the [`mitigate::run_fleet`] harness prices the
//!   committed action log in JCT and wasted work via
//!   [`sim::execute_actions`].
//! * [`health`] — the Guard-style node-health manager:
//!   [`health::HealthAggregator`] attaches to the engine as a
//!   [`serve::HealthObserver`], folds per-node straggler truth into
//!   rolling rates, and renders [`health::NodeVerdict`]s that
//!   [`mitigate::NodeAwarePolicy`] turns into machine quarantines
//!   (the two-pass loop is [`mitigate::run_node_fleet`]).
//! * [`serve`] — the concurrent streaming prediction service: producers
//!   push from any thread through cloneable `EngineHandle`s into
//!   per-shard MPSC ingress queues, a background drain service scores
//!   and finalizes jobs mid-stream under back-pressure (blocking sends
//!   under `Block`) with adaptive shard balancing, bit-for-bit equal to
//!   sequential replay (see `docs/OPERATIONS.md` for running it).
//! * [`runtime`] — the dependency-free concurrency substrate behind
//!   [`serve`] and the parallel ML loops: work-stealing thread pool,
//!   bounded MPSC `Channel`, park/unpark `Notifier`.
//! * [`trace`] — the synthetic Google/Alibaba-style trace substrate,
//!   including interleaved multi-job event streams (`trace::fleet_events`,
//!   `trace::staggered_fleet_events`).
//! * [`data`], [`ml`], [`linalg`], [`outlier`], [`pu`], [`survival`] — the
//!   substrates everything above is built from.
//!
//! `ARCHITECTURE.md` at the repository root maps paper sections to these
//! crates, diagrams the online replay loop, and documents the warm-start
//! refit subsystem ([`core::RefitPolicy`] / [`core::WarmRefitState`]).
//!
//! # Example
//!
//! ```
//! use nurd::core::{NurdConfig, NurdPredictor};
//! use nurd::sim::{replay_job, ReplayConfig};
//! use nurd::trace::{SuiteConfig, TraceStyle};
//!
//! let config = SuiteConfig::new(TraceStyle::Google)
//!     .with_jobs(1)
//!     .with_task_range(60, 80)
//!     .with_checkpoints(10)
//!     .with_seed(42);
//! let job = nurd::trace::generate_job(&config, 0);
//! let mut predictor = NurdPredictor::new(NurdConfig::default());
//! let outcome = replay_job(&job, &mut predictor, &ReplayConfig::default());
//! assert_eq!(outcome.confusion.total(), job.task_count());
//! ```
//!
//! See `README.md` for the experiment harness, `DESIGN.md` for the system
//! inventory and substitution rationale, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use nurd_baselines as baselines;
pub use nurd_core as core;
pub use nurd_data as data;
pub use nurd_health as health;
pub use nurd_linalg as linalg;
pub use nurd_mitigate as mitigate;
pub use nurd_ml as ml;
pub use nurd_outlier as outlier;
pub use nurd_pu as pu;
pub use nurd_runtime as runtime;
pub use nurd_serve as serve;
pub use nurd_sim as sim;
pub use nurd_survival as survival;
pub use nurd_trace as trace;
