//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this shim implements
//! the criterion API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `sample_size`,
//! `BenchmarkId::from_parameter`, `criterion_group!`/`criterion_main!` and
//! `black_box` — with a simple warmup-then-sample measurement loop.
//!
//! Each benchmark prints `name  time: [median mean]` to stdout. Set
//! `CRITERION_JSON=/path/file.json` to additionally write every estimate
//! as a JSON array (used to record `BENCH_*.json` perf baselines), and
//! `CRITERION_MEASURE_MS` / `CRITERION_WARMUP_MS` to adjust the time
//! budget per benchmark (defaults: 1500 / 300).
//!
//! A positional command-line argument acts as a substring filter on
//! benchmark ids, mirroring `cargo bench <filter>`; `--flags` are ignored
//! for cargo compatibility.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Uses `parameter`'s `Display` form as the id (criterion's
    /// `from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct Estimate {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    samples: usize,
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

/// Top-level harness state; one per benchmark binary.
pub struct Criterion {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
    default_samples: usize,
    estimates: Vec<Estimate>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional (non --flag) argument = substring filter, as
        // with `cargo bench -- <filter>`.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            filter,
            warmup: env_ms("CRITERION_WARMUP_MS", 300),
            measure: env_ms("CRITERION_MEASURE_MS", 1500),
            default_samples: 30,
            estimates: Vec::new(),
        }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(name.to_string(), samples, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Writes collected estimates to `CRITERION_JSON` (when set). Called by
    /// [`criterion_main!`] after all groups run.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, e) in self.estimates.iter().enumerate() {
            let comma = if i + 1 == self.estimates.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"samples\": {}}}{}\n",
                e.id, e.mean_ns, e.median_ns, e.samples, comma
            ));
        }
        out.push_str("]\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("wrote {} estimates to {path}", self.estimates.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut routine: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }

        // Warmup: discover a per-sample iteration count that fits the
        // measurement budget across `samples` samples.
        let mut iters: u64 = 1;
        let mut one = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut per_iter = Duration::from_secs(1);
        while warmup_start.elapsed() < self.warmup {
            one.iters = iters;
            routine(&mut one);
            per_iter =
                one.elapsed.max(Duration::from_nanos(1)) / u32::try_from(iters).unwrap_or(u32::MAX);
            if one.elapsed < Duration::from_millis(1) {
                iters = iters.saturating_mul(2);
            }
        }
        let budget_per_sample = self.measure / u32::try_from(samples).unwrap_or(u32::MAX);
        let per_sample_iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u128::from(u64::MAX)) as u64;

        let mut times_ns: Vec<f64> = Vec::with_capacity(samples);
        let mut bencher = Bencher {
            iters: per_sample_iters,
            elapsed: Duration::ZERO,
        };
        let measure_start = Instant::now();
        for _ in 0..samples {
            routine(&mut bencher);
            times_ns.push(bencher.elapsed.as_nanos() as f64 / per_sample_iters as f64);
            // Keep pathological benches bounded at ~4x the budget.
            if measure_start.elapsed() > self.measure * 4 {
                break;
            }
        }
        times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
        let median = times_ns[times_ns.len() / 2];
        println!(
            "{id:<40} time: [median {} mean {}]  ({} samples x {} iters)",
            format_ns(median),
            format_ns(mean),
            times_ns.len(),
            per_sample_iters
        );
        self.estimates.push(Estimate {
            id,
            mean_ns: mean,
            median_ns: median,
            samples: times_ns.len(),
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// One benchmark group; ids render as `group_name/bench_id`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `routine` under `group/id`.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(full, samples, routine);
        self
    }

    /// Benchmarks `routine` with an input reference under `group/id`.
    pub fn bench_with_input<ID: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_from_parameter_displays_value() {
        assert_eq!(BenchmarkId::from_parameter(300).to_string(), "300");
        assert_eq!(BenchmarkId::new("fit", 300).to_string(), "fit/300");
    }

    #[test]
    fn measurement_produces_estimates() {
        std::env::remove_var("CRITERION_JSON");
        let mut c = Criterion {
            filter: None,
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            default_samples: 5,
            estimates: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.estimates.len(), 1);
        assert!(c.estimates[0].mean_ns > 0.0);
    }

    #[test]
    fn groups_prefix_ids_and_respect_filter() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            warmup: Duration::from_millis(2),
            measure: Duration::from_millis(10),
            default_samples: 3,
            estimates: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("keep_me", |b| b.iter(|| black_box(0)));
        g.bench_function("drop_me", |b| b.iter(|| black_box(0)));
        g.finish();
        assert_eq!(c.estimates.len(), 1);
        assert_eq!(c.estimates[0].id, "grp/keep_me");
    }
}
