//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of exactly the surface
//! the nurd crates call:
//!
//! * [`rngs::StdRng`] — an xoshiro256++ generator (Blackman & Vigna),
//!   seeded through SplitMix64 from a `u64`, matching the quality class of
//!   the real `StdRng` for simulation purposes (it is *not* the same
//!   stream as upstream `StdRng`, which is seed-incompatible across rand
//!   versions anyway).
//! * [`SeedableRng::seed_from_u64`] / [`Rng::gen_range`] /
//!   [`Rng::gen_bool`] over integer and float ranges.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Statistical quality matters here: the trace generator draws latencies
//! and straggler labels from this stream and the test-suite asserts
//! distributional properties, so the generator must be a proper PRNG, not
//! a toy LCG.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; int or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws a uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough bounded draw via 128-bit multiply (Lemire's method
/// without the rejection step; bias is < 2⁻⁶⁴·span, irrelevant at our
/// sample sizes).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator — 256-bit state, period 2²⁵⁶ − 1.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait (shuffle only).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(10usize..=12);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let sum: f64 = (0..100_000).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
