//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (multiple `#[test]` functions per block, with
//!   an optional `#![proptest_config(...)]` inner attribute);
//! * scalar range strategies (`-1.0..1.0f64`, `0u8..2`, `1usize..5`, …);
//! * [`collection::vec`] with exact or ranged sizes, arbitrarily nested;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: failing inputs are printed but **not
//! shrunk**, and the default case count is 64 (upstream: 256) to keep
//! `cargo test` fast in debug builds. Each test's RNG stream is seeded
//! from a hash of its module path, so failures reproduce across runs.

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;

/// Per-test execution configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values for one macro parameter.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// Strategy yielding a constant value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`fn@vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy over an element strategy and a size (exact `usize`
    /// or `Range<usize>`); nests freely (`vec(vec(0.0..1.0f64, 3), 1..10)`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rand::Rng::gen_range(rng, self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the test's
    /// fully-qualified name so each property gets an independent but
    /// reproducible stream.
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Defines property tests: each inner `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over `config.cases` random
/// draws, printing the failing inputs (unshrunk) on panic.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name), case + 1, config.cases, inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn scalar_ranges_respect_bounds(x in -3.0..7.0f64, n in 2usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
        }

        #[test]
        fn vec_sizes_respect_range(v in collection::vec(0u8..2, 4..24)) {
            prop_assert!((4..24).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn nested_vec_exact_size(m in collection::vec(collection::vec(-1.0..1.0f64, 3), 2..6)) {
            prop_assert!((2..6).contains(&m.len()));
            for row in &m {
                prop_assert_eq!(row.len(), 3);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_applies(x in 0.0..1.0f64) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_runner::rng_for("same::name");
        let mut b = crate::test_runner::rng_for("same::name");
        let strat = 0.0..1.0f64;
        for _ in 0..10 {
            assert_eq!(
                strat.generate(&mut a).to_bits(),
                strat.generate(&mut b).to_bits()
            );
        }
    }
}
